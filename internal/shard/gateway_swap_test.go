package shard

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"roamsim/internal/amigo"
	"roamsim/internal/obs"
)

// TestGatewayPauseResume: Pause drains in-flight requests and blocks
// new ones; Resume swaps in a topology with a different shard count and
// unblocks them against the new ring.
func TestGatewayPauseResume(t *testing.T) {
	gw, _, hs := shardSet(t, 1)
	driveME(t, hs.URL, "PAK-00", amigo.ProtoV2)

	gw.Pause()
	started := make(chan struct{})
	done := make(chan int, 1)
	go func() {
		close(started)
		resp, err := http.Get(hs.URL + "/admin/mes")
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	<-started
	select {
	case code := <-done:
		t.Fatalf("request completed (HTTP %d) while gateway was paused", code)
	case <-time.After(50 * time.Millisecond):
	}

	// Resume onto a 3-shard topology.
	servers := make([]*amigo.Server, 3)
	backends := make([]http.Handler, 3)
	for i := range servers {
		servers[i] = amigo.NewServer(nil)
		backends[i] = Mount(servers[i].Handler(), servers[i].AdminHandler())
	}
	gw.Resume(backends)
	select {
	case code := <-done:
		if code != http.StatusOK {
			t.Fatalf("gated request finished with HTTP %d after resume", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("gated request never completed after Resume")
	}
	if got := gw.Ring().Shards(); got != 3 {
		t.Fatalf("Ring().Shards() = %d after resume, want 3", got)
	}
	// The data plane routes by the new ring: an ME lands on its new
	// owning shard's server.
	me := "GEO-42"
	driveME(t, hs.URL, me, amigo.ProtoV2)
	owner := gw.Ring().Shard(me)
	if got := len(servers[owner].Results()); got == 0 {
		t.Fatalf("no results on shard %d, the new ring's owner of %s", owner, me)
	}
}

// TestGatewayBadCursor400 covers the malformed-cursor satellite fix on
// both handlers: the gateway's merged route and amigo's AdminHandler
// must answer 400 rather than silently replaying the log from 0.
func TestGatewayBadCursor400(t *testing.T) {
	_, _, hs := shardSet(t, 2)
	driveME(t, hs.URL, "PAK-00", amigo.ProtoV2)

	srv := amigo.NewServer(nil)
	admin := httptestServer(t, srv.AdminHandler())

	for _, q := range []string{"cursor=abc", "cursor=1e3", "cursor=7&limit=x", "limit=--1"} {
		for _, base := range []string{hs.URL, admin} {
			resp, err := http.Get(base + "/admin/results?" + q)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("GET %s/admin/results?%s = HTTP %d, want 400", base, q, resp.StatusCode)
			}
		}
	}
	// Well-formed cursors (including the probe form) still work.
	for _, q := range []string{"", "cursor=0", "cursor=-1", "cursor=1&limit=1"} {
		for _, base := range []string{hs.URL, admin} {
			resp, err := http.Get(base + "/admin/results?" + q)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s/admin/results?%s = HTTP %d, want 200", base, q, resp.StatusCode)
			}
		}
	}
}

// TestMergedResultsConcurrentAppend is the merged-read race regression:
// while every shard's log grows concurrently, each single merged read
// must still be a consistent snapshot — zero duplicates, and per ME an
// uninterrupted prefix (no skipped records). Run under -race this also
// exercises the topology/gate synchronization.
func TestMergedResultsConcurrentAppend(t *testing.T) {
	const shards = 3
	sinks := make([]amigo.Sink, shards)
	backends := make([]http.Handler, shards)
	ring := NewRing(shards)
	for i := range sinks {
		sinks[i] = amigo.NewMemorySink()
		srv := amigo.NewServer(nil, amigo.WithSink(sinks[i]))
		backends[i] = Mount(srv.Handler(), srv.AdminHandler())
	}
	gw := NewGateway(backends, Options{Obs: obs.NewRegistry()})

	// One ME per shard, appending hard in the background.
	mes := make([]string, shards)
	for i := 0; i < shards; i++ {
		for n := 0; ; n++ {
			me := fmt.Sprintf("me-%d-%d", i, n)
			if ring.Shard(me) == i {
				mes[i] = me
				break
			}
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for seq := 1; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				sinks[i].Append([]amigo.Result{wres(mes[i], seq)})
				// Yield so the reader is not starved on small machines;
				// the race window (append between probe and page reads)
				// stays wide open.
				time.Sleep(100 * time.Microsecond)
			}
		}(i)
	}

	for read := 0; read < 100; read++ {
		var resp memResponse
		// Page with a limit so each read is O(limit) even as the logs
		// grow; the snapshot clamp is exercised on every page boundary.
		req, _ := http.NewRequest(http.MethodGet, "/admin/results?limit=2000", nil)
		gw.ServeHTTP(&resp, req)
		if resp.code != 0 && resp.code != http.StatusOK {
			t.Fatalf("merged read %d: HTTP %d: %s", read, resp.code, resp.body.String())
		}
		var page resultsPage
		if err := json.Unmarshal(resp.body.Bytes(), &page); err != nil {
			t.Fatalf("merged read %d: %v", read, err)
		}
		// Shard-order concatenation, and per ME the TaskIDs must be the
		// gap-free prefix 1..k: a duplicate or a skipped record breaks
		// the sequence.
		lastShard := 0
		next := map[string]int{}
		for _, raw := range page.Results {
			var r amigo.Result
			if err := json.Unmarshal(raw, &r); err != nil {
				t.Fatal(err)
			}
			s := ring.Shard(r.ME)
			if s < lastShard {
				t.Fatalf("merged read %d: shard %d result after shard %d", read, s, lastShard)
			}
			lastShard = s
			if want := next[r.ME] + 1; r.TaskID != want {
				t.Fatalf("merged read %d: %s got TaskID %d, want %d (duplicate or skip)", read, r.ME, r.TaskID, want)
			}
			next[r.ME] = r.TaskID
		}
		if page.Cursor != len(page.Results) {
			t.Fatalf("merged read %d: cursor %d for %d results from cursor 0", read, page.Cursor, len(page.Results))
		}
	}
	close(stop)
	wg.Wait()
}

func httptestServer(t *testing.T, h http.Handler) string {
	t.Helper()
	hs := httptest.NewServer(h)
	t.Cleanup(hs.Close)
	return hs.URL
}
