package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"testing"

	"roamsim/internal/amigo"
	"roamsim/internal/obs"
	"roamsim/internal/wire"
)

func TestRingDeterministicAndTotal(t *testing.T) {
	r1 := NewRing(4)
	r2 := NewRing(4)
	for i := 0; i < 100; i++ {
		me := fmt.Sprintf("PAK-%02d", i)
		s := r1.Shard(me)
		if s < 0 || s >= 4 {
			t.Fatalf("Shard(%q) = %d out of range", me, s)
		}
		if s2 := r2.Shard(me); s2 != s {
			t.Fatalf("placement not deterministic: %q -> %d vs %d", me, s, s2)
		}
	}
	if NewRing(1).Shard("anything") != 0 {
		t.Fatal("single-shard ring must place everything on shard 0")
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(4)
	counts := make([]int, 4)
	for c := 0; c < 10; c++ {
		for i := 0; i < 50; i++ {
			counts[r.Shard(fmt.Sprintf("C%d-%02d", c, i))]++
		}
	}
	for s, n := range counts {
		// 500 MEs over 4 shards: expect ~125 each; consistent hashing
		// with 128 vnodes should stay within a loose 2x band.
		if n < 60 || n > 250 {
			t.Fatalf("shard %d owns %d of 500 MEs — ring badly unbalanced: %v", s, n, counts)
		}
	}
}

// shardSet spins up n amigo servers behind a gateway for HTTP-level
// tests.
func shardSet(t *testing.T, n int) (*Gateway, []*amigo.Server, *httptest.Server) {
	t.Helper()
	servers := make([]*amigo.Server, n)
	backends := make([]http.Handler, n)
	for i := range servers {
		servers[i] = amigo.NewServer(nil)
		backends[i] = Mount(servers[i].Handler(), servers[i].AdminHandler())
	}
	gw := NewGateway(backends, Options{Obs: obs.NewRegistry()})
	hs := httptest.NewServer(gw)
	t.Cleanup(hs.Close)
	return gw, servers, hs
}

// driveME runs one ME through the full protocol via the gateway and
// returns its uploaded results.
func driveME(t *testing.T, baseURL, me, proto string) []amigo.Result {
	t.Helper()
	ep := &amigo.Endpoint{Name: me, BaseURL: baseURL, Proto: proto}
	reg, _ := json.Marshal(map[string]string{"me": me, "country": me[:3]})
	resp0, err := http.Post(baseURL+"/v1/register", "application/json", bytes.NewReader(reg))
	if err != nil {
		t.Fatal(err)
	}
	resp0.Body.Close()
	if resp0.StatusCode != http.StatusNoContent {
		t.Fatalf("%s register via gateway: HTTP %d", me, resp0.StatusCode)
	}
	// Schedule through the gateway's admin route.
	body, _ := json.Marshal(map[string]any{"me": me, "tasks": []amigo.Task{
		{Kind: "speedtest", Config: "esim"},
		{Kind: "dns", Target: "8.8.8.8", Config: "sim"},
	}})
	resp, err := http.Post(baseURL+"/admin/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s schedule via gateway: HTTP %d", me, resp.StatusCode)
	}
	var out []amigo.Result
	for {
		tasks, err := ep.Lease(8)
		if err != nil {
			t.Fatalf("%s lease: %v", me, err)
		}
		if len(tasks) == 0 {
			break
		}
		var up []amigo.Result
		for _, task := range tasks {
			up = append(up, amigo.Result{TaskID: task.ID, ME: me, Kind: task.Kind, Config: task.Config, OK: true, Payload: []byte(`{"ok":1}`)})
		}
		if err := ep.Upload(up); err != nil {
			t.Fatalf("%s upload: %v", me, err)
		}
		out = append(out, up...)
	}
	return out
}

func TestGatewayRoutesBothProtocols(t *testing.T) {
	gw, servers, hs := shardSet(t, 4)
	mes := []string{"PAK-00", "PAK-01", "GEO-00", "GEO-01", "USA-00", "USA-01"}
	want := 0
	for i, me := range mes {
		proto := amigo.ProtoV2
		if i%2 == 1 {
			proto = amigo.ProtoV3
		}
		want += len(driveME(t, hs.URL, me, proto))
	}
	// Every ME's results must have landed wholly on its ring shard.
	totalByShard := 0
	for i, srv := range servers {
		rs := srv.Results()
		totalByShard += len(rs)
		for _, res := range rs {
			if got := gw.Ring().Shard(res.ME); got != i {
				t.Fatalf("result for %s found on shard %d, ring says %d", res.ME, i, got)
			}
		}
	}
	if totalByShard != want {
		t.Fatalf("shards hold %d results, uploaded %d", totalByShard, want)
	}

	// Merged /admin/mes equals the sorted ME list.
	resp, err := http.Get(hs.URL + "/admin/mes")
	if err != nil {
		t.Fatal(err)
	}
	var gotMEs []string
	if err := json.NewDecoder(resp.Body).Decode(&gotMEs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	wantMEs := append([]string(nil), mes...)
	sort.Strings(wantMEs)
	if !reflect.DeepEqual(gotMEs, wantMEs) {
		t.Fatalf("merged /admin/mes = %v, want %v", gotMEs, wantMEs)
	}
}

func TestGatewayMergedResultsPagination(t *testing.T) {
	gw, servers, hs := shardSet(t, 3)
	mes := []string{"PAK-00", "GEO-00", "USA-00", "FRA-00", "JPN-00"}
	uploaded := 0
	for _, me := range mes {
		uploaded += len(driveME(t, hs.URL, me, amigo.ProtoV2))
	}

	// cursor=-1 returns just the global cursor.
	var head resultsPage
	getJSON(t, hs.URL+"/admin/results?cursor=-1", &head)
	if head.Cursor != uploaded {
		t.Fatalf("global cursor = %d, want %d", head.Cursor, uploaded)
	}

	// Page through with a small limit and check the merged stream equals
	// the per-shard logs concatenated in shard order.
	var want []json.RawMessage
	for _, srv := range servers {
		var rs []amigo.Result
		rs = srv.Results()
		for _, res := range rs {
			b, _ := json.Marshal(res)
			want = append(want, json.RawMessage(b))
		}
	}
	var got []json.RawMessage
	cursor := 0
	for {
		var page resultsPage
		getJSON(t, fmt.Sprintf("%s/admin/results?cursor=%d&limit=3", hs.URL, cursor), &page)
		if len(page.Results) == 0 || page.Cursor <= cursor {
			break
		}
		got = append(got, page.Results...)
		cursor = page.Cursor
	}
	if len(got) != len(want) {
		t.Fatalf("merged pagination yielded %d results, want %d", len(got), len(want))
	}
	for i := range got {
		var a, b amigo.Result
		if err := json.Unmarshal(got[i], &a); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(want[i], &b); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("merged result %d diverged:\n got %+v\nwant %+v", i, a, b)
		}
	}
	_ = gw
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// blindSink is write-only: it forces the 501 path.
type blindSink struct{}

func (blindSink) Append([]amigo.Result) {}

func TestGatewayMergedResults501(t *testing.T) {
	srvOK := amigo.NewServer(nil)
	srvBlind := amigo.NewServer(nil, amigo.WithSink(blindSink{}))
	gw := NewGateway([]http.Handler{
		Mount(srvOK.Handler(), srvOK.AdminHandler()),
		Mount(srvBlind.Handler(), srvBlind.AdminHandler()),
	}, Options{})
	hs := httptest.NewServer(gw)
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/admin/results?cursor=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("merged results over a blind shard: HTTP %d, want 501", resp.StatusCode)
	}
}

func TestGatewaySetBackendSwapsLive(t *testing.T) {
	gw, _, hs := shardSet(t, 2)
	me := "PAK-00"
	shard := gw.Ring().Shard(me)
	driveME(t, hs.URL, me, amigo.ProtoV2)

	// Swap the owning shard for a fresh empty server: the ME is now
	// unknown there, and the lease route must answer 404.
	fresh := amigo.NewServer(nil)
	gw.SetBackend(shard, Mount(fresh.Handler(), fresh.AdminHandler()))
	body, _ := json.Marshal(map[string]any{"me": me, "max": 1})
	resp, err := http.Post(hs.URL+"/v2/tasks/lease", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("lease after backend swap: HTTP %d, want 404", resp.StatusCode)
	}
}

func TestGatewayV3BadFrames(t *testing.T) {
	_, _, hs := shardSet(t, 2)
	for _, tc := range []struct {
		name string
		body []byte
	}{
		{"empty", nil},
		{"short", []byte("R3")},
		{"garbage", bytes.Repeat([]byte{0xff}, 32)},
		{"tasks-frame", wire.AppendTasks(nil, []wire.Task{{ID: 1, Kind: "dns", Config: "sim"}})},
	} {
		resp, err := http.Post(hs.URL+"/v3/results", wire.ContentType, bytes.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: HTTP %d, want 400", tc.name, resp.StatusCode)
		}
	}
}
