// Package measure implements the device-side measurement tools of
// Table 1 — speedtest, traceroute (mtr), CDN fetch (curl), DNS probe
// (Nextdns), and video streaming (stats-for-nerds) — evaluated against a
// session of the simulated Airalo world.
//
// Every function takes the Session under test and a deterministic
// random source; outputs are the raw observations the campaigns logged,
// which the core tomography package then analyzes.
package measure

import (
	"fmt"
	"strings"

	"roamsim/internal/airalo"
	"roamsim/internal/cdnsim"
	"roamsim/internal/dnssim"
	"roamsim/internal/mno"
	"roamsim/internal/netsim"
	"roamsim/internal/rng"
	"roamsim/internal/video"
	"roamsim/internal/voip"
)

// Targets of the traceroute/latency experiments.
const (
	TargetGoogle   = "Google"
	TargetFacebook = "Facebook"
	TargetYouTube  = "Google" // YouTube is served from Google's edges
	TargetOokla    = "Ookla"
)

// radioDegradedFactor throttles throughput when the channel is poor
// (CQI below the QPSK threshold); such samples exist in the raw data and
// are filtered out by the paper's CQI >= 7 rule.
const radioDegradedFactor = 0.35

// TraceResult is one traceroute with its session context.
type TraceResult struct {
	Session *airalo.Session
	Target  string
	Raw     netsim.TracerouteResult
}

// Traceroute runs an mtr-style traceroute from the session's device to
// the named SP's nearest edge (anycast steering happens at the breakout,
// so "nearest" is relative to the PGW).
func Traceroute(s *airalo.Session, spName string, src *rng.Source) (TraceResult, error) {
	w := s.World()
	sp, ok := w.SPs[spName]
	if !ok {
		return TraceResult{}, fmt.Errorf("measure: unknown SP %q", spName)
	}
	edge, err := sp.NearestEdge(s.Site.Loc)
	if err != nil {
		return TraceResult{}, err
	}
	path, err := s.PathTo(edge.Server)
	if err != nil {
		return TraceResult{}, err
	}
	return TraceResult{Session: s, Target: spName, Raw: w.Net.Traceroute(path, src)}, nil
}

// Ping samples the RTT from the device to the named SP's nearest edge.
func Ping(s *airalo.Session, spName string, src *rng.Source) (float64, error) {
	w := s.World()
	sp, ok := w.SPs[spName]
	if !ok {
		return 0, fmt.Errorf("measure: unknown SP %q", spName)
	}
	edge, err := sp.NearestEdge(s.Site.Loc)
	if err != nil {
		return 0, err
	}
	path, err := s.PathTo(edge.Server)
	if err != nil {
		return 0, err
	}
	return w.Net.RTTms(path, src), nil
}

// SpeedtestResult is one Ookla-style measurement with radio context.
type SpeedtestResult struct {
	Session    *airalo.Session
	ServerCity string
	LatencyMs  float64
	DownMbps   float64
	UpMbps     float64
	Radio      mno.RadioSample
}

// Speedtest runs a bandwidth test against the Ookla server nearest the
// session's public breakout (which is how server selection behaves for
// roaming traffic: the speedtest provider sees the PGW's geolocation).
func Speedtest(s *airalo.Session, src *rng.Source) (SpeedtestResult, error) {
	w := s.World()
	ookla := w.SPs[TargetOokla]
	edge, err := ookla.NearestEdge(s.Site.Loc)
	if err != nil {
		return SpeedtestResult{}, err
	}
	path, err := s.PathTo(edge.Server)
	if err != nil {
		return SpeedtestResult{}, err
	}
	radio := s.Radio.Sample(src)
	down, up := s.DownCapMbps, s.UpCapMbps
	if radio.RAT == mno.RAT4G {
		// 4G carries lower policy grants than 5G on the same network.
		down *= 0.7
		up *= 0.75
	}
	if !radio.Usable() {
		down *= radioDegradedFactor
		up *= radioDegradedFactor
	}
	res := w.Net.Speedtest(path, down, up, src)
	return SpeedtestResult{
		Session: s, ServerCity: edge.City,
		LatencyMs: res.LatencyMs, DownMbps: res.DownloadMbps, UpMbps: res.UploadMbps,
		Radio: radio,
	}, nil
}

// CDNFetch downloads jquery.min.js from the named CDN provider: DNS
// resolution (through the session's resolver) followed by a TLS fetch
// from the nearest POP.
func CDNFetch(s *airalo.Session, providerName string, src *rng.Source) (cdnsim.FetchResult, error) {
	w := s.World()
	base, ok := w.CDNs[providerName]
	if !ok {
		return cdnsim.FetchResult{}, fmt.Errorf("measure: unknown CDN %q", providerName)
	}
	// The session's edge cache behaves per configuration (the Thailand
	// SIM-vs-eSIM MISS asymmetry), so the hit rate is session-scoped.
	provider := &cdnsim.Provider{
		SP: base.SP, HitRate: s.CDNHitRate,
		OriginPenaltyMedianMs: base.OriginPenaltyMedianMs,
	}
	dns, err := DNSLookup(s, src)
	if err != nil {
		return cdnsim.FetchResult{}, err
	}
	edge, err := base.SP.NearestEdge(s.Site.Loc)
	if err != nil {
		return cdnsim.FetchResult{}, err
	}
	path, err := s.PathTo(edge.Server)
	if err != nil {
		return cdnsim.FetchResult{}, err
	}
	transfer := w.Net.DownloadTimeMs(path, cdnsim.ObjectBytes,
		netsim.TransferOptions{Handshakes: 2, PolicyCapMbps: s.DownCapMbps}, src)
	return provider.Fetch(edge, dns.DurationMs, transfer, src), nil
}

// DNSLookup resolves a name through the session's DNS configuration and
// measures the lookup time, Nextdns-style.
func DNSLookup(s *airalo.Session, src *rng.Source) (dnssim.LookupResult, error) {
	w := s.World()
	resolver, doh, err := dnssim.Identify(s.DNS, s.Site.Loc)
	if err != nil {
		return dnssim.LookupResult{}, err
	}
	node, ok := w.ResolverNode(resolver.Addr)
	if !ok {
		return dnssim.LookupResult{}, fmt.Errorf("measure: resolver %s has no node", resolver.Addr)
	}
	path, err := s.PathTo(node)
	if err != nil {
		return dnssim.LookupResult{}, err
	}
	rtt := w.Net.RTTms(path, src)
	return dnssim.Lookup(resolver, rtt, doh, src), nil
}

// StreamVideo plays the 4K test video over the session and reports the
// stats-for-nerds summary. YouTube-specific policy caps (the paper's
// traffic-differentiation conjecture) apply here and only here.
func StreamVideo(s *airalo.Session, cfg video.Config, src *rng.Source) (video.Stats, error) {
	w := s.World()
	sp := w.SPs[TargetYouTube]
	edge, err := sp.NearestEdge(s.Site.Loc)
	if err != nil {
		return video.Stats{}, err
	}
	path, err := s.PathTo(edge.Server)
	if err != nil {
		return video.Stats{}, err
	}
	throughput := func() float64 {
		res := w.Net.Speedtest(path, s.DownCapMbps, s.UpCapMbps, src)
		rate := res.DownloadMbps
		if s.YouTubeCapMbps > 0 && rate > s.YouTubeCapMbps {
			rate = s.YouTubeCapMbps
		}
		return rate
	}
	return video.Play(cfg, throughput, src)
}

// PGWHopRTT measures the RTT from the device to its assigned PGW (the
// Figure 8/9 quantity) without a full traceroute.
func PGWHopRTT(s *airalo.Session, src *rng.Source) (float64, error) {
	path, err := s.PathTo(s.PGWNode)
	if err != nil {
		return 0, err
	}
	return s.World().Net.RTTms(path, src), nil
}

// VoIPProbe streams RTP-like probes to the nearest Google edge and
// reports delay, RFC 3550 jitter and loss — the future-work metrics the
// paper's Discussion calls for.
func VoIPProbe(s *airalo.Session, packets int, src *rng.Source) (voip.ProbeResult, error) {
	w := s.World()
	sp := w.SPs[TargetGoogle]
	edge, err := sp.NearestEdge(s.Site.Loc)
	if err != nil {
		return voip.ProbeResult{}, err
	}
	path, err := s.PathTo(edge.Server)
	if err != nil {
		return voip.ProbeResult{}, err
	}
	return voip.Probe(w.Net, path, packets, src)
}

// FormatMTR renders a traceroute in mtr's report style:
//
//	HOST: PAK/esim            Loss%  Snt  Best
//	  1.|-- 10.0.0.1           0.0%    3  14.2
//	  2.|-- ???               100.0    3   0.0
func FormatMTR(tr TraceResult) string {
	var b strings.Builder
	label := "?"
	if tr.Session != nil {
		label = fmt.Sprintf("%s/%s", tr.Session.D.Key, tr.Session.Kind)
	}
	fmt.Fprintf(&b, "HOST: %-22s Loss%%  Snt   Best\n", label+" -> "+tr.Target)
	for _, h := range tr.Raw.Hops {
		if h.Responded {
			fmt.Fprintf(&b, "%3d.|-- %-18s %5.1f%% %4d %6.1f\n", h.TTL, h.Addr, 0.0, 3, h.BestRTTms)
		} else {
			fmt.Fprintf(&b, "%3d.|-- %-18s %5.1f%% %4d %6.1f\n", h.TTL, "???", 100.0, 3, 0.0)
		}
	}
	return b.String()
}

// PageLoadResult decomposes a simulated page load.
type PageLoadResult struct {
	DNSMs     float64
	HTMLMs    float64
	ObjectsMs float64
	TotalMs   float64
}

// PageLoad models loading a typical page over the session: one DNS
// resolution, the HTML document from the nearest Google edge, then 12
// subresources (30 KB each) fetched over 6 parallel connections from
// the nearest Cloudflare POP. It composes the same primitives the
// campaign measured separately (DNS, CDN) into the web-QoE quantity the
// paper's CDN section stands in for.
func PageLoad(s *airalo.Session, src *rng.Source) (PageLoadResult, error) {
	w := s.World()
	var res PageLoadResult
	dns, err := DNSLookup(s, src)
	if err != nil {
		return res, err
	}
	res.DNSMs = dns.DurationMs

	googleEdge, err := w.SPs[TargetGoogle].NearestEdge(s.Site.Loc)
	if err != nil {
		return res, err
	}
	htmlPath, err := s.PathTo(googleEdge.Server)
	if err != nil {
		return res, err
	}
	res.HTMLMs = w.Net.DownloadTimeMs(htmlPath, 60_000,
		netsim.TransferOptions{Handshakes: 2, PolicyCapMbps: s.DownCapMbps}, src)

	cdnEdge, err := w.CDNs["Cloudflare"].SP.NearestEdge(s.Site.Loc)
	if err != nil {
		return res, err
	}
	objPath, err := s.PathTo(cdnEdge.Server)
	if err != nil {
		return res, err
	}
	const objects, parallel = 12, 6
	rounds := (objects + parallel - 1) / parallel
	for r := 0; r < rounds; r++ {
		handshakes := 0 // connections reused after the first round
		if r == 0 {
			handshakes = 2
		}
		res.ObjectsMs += w.Net.DownloadTimeMs(objPath, 30_000,
			netsim.TransferOptions{Handshakes: handshakes, PolicyCapMbps: s.DownCapMbps}, src)
	}
	res.TotalMs = res.DNSMs + res.HTMLMs + res.ObjectsMs
	return res, nil
}
