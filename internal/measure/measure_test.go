package measure

import (
	"strings"
	"testing"

	"roamsim/internal/airalo"
	"roamsim/internal/core"
	"roamsim/internal/ipx"
	"roamsim/internal/rng"
	"roamsim/internal/stats"
	"roamsim/internal/video"
)

var sharedWorld *airalo.World

func world(t *testing.T) *airalo.World {
	t.Helper()
	if sharedWorld == nil {
		w, err := airalo.Build(11)
		if err != nil {
			t.Fatal(err)
		}
		sharedWorld = w
	}
	return sharedWorld
}

func esim(t *testing.T, iso string, src *rng.Source) *airalo.Session {
	t.Helper()
	s, err := world(t).Deployments[iso].AttachESIM(src)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sim(t *testing.T, iso string, src *rng.Source) *airalo.Session {
	t.Helper()
	s, err := world(t).Deployments[iso].AttachSIM(src)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTracerouteDemarcates(t *testing.T) {
	src := rng.New(1)
	w := world(t)
	tr, err := Traceroute(esim(t, "DEU", src), TargetGoogle, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Raw.Hops) < 4 {
		t.Fatalf("too few hops: %d", len(tr.Raw.Hops))
	}
	pa, err := core.Demarcate(tr.Raw, w.Reg)
	if err != nil {
		t.Fatal(err)
	}
	if pa.PGW.AS.Number != 54825 && pa.PGW.AS.Number != 16276 {
		t.Errorf("German eSIM PGW AS = %s, want Packet Host or OVH", pa.PGW.AS.Number)
	}
	if _, err := Traceroute(esim(t, "DEU", src), "Nope", src); err == nil {
		t.Error("unknown SP should error")
	}
}

func TestPingHRMuchSlowerThanSIM(t *testing.T) {
	src := rng.New(2)
	var esimRTT, simRTT []float64
	for i := 0; i < 40; i++ {
		e, err := Ping(esim(t, "PAK", src), TargetGoogle, src)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Ping(sim(t, "PAK", src), TargetGoogle, src)
		if err != nil {
			t.Fatal(err)
		}
		esimRTT = append(esimRTT, e)
		simRTT = append(simRTT, s)
	}
	me, ms := stats.Median(esimRTT), stats.Median(simRTT)
	// The Pakistan HR disparity: eSIM RTT several times the SIM RTT.
	if me < ms*3 {
		t.Errorf("PAK eSIM median RTT %.0f should be >= 3x SIM %.0f", me, ms)
	}
	if me < 150 {
		t.Errorf("PAK HR eSIM should exceed 150 ms, got %.0f", me)
	}
}

func TestSpeedtestCapsAndRadio(t *testing.T) {
	src := rng.New(3)
	var fiveG []float64
	for i := 0; i < 150; i++ {
		res, err := Speedtest(esim(t, "GEO", src), src)
		if err != nil {
			t.Fatal(err)
		}
		if res.DownMbps <= 0 || res.UpMbps <= 0 || res.LatencyMs <= 0 {
			t.Fatal("degenerate speedtest")
		}
		if res.Radio.CQI < 1 || res.Radio.CQI > 15 {
			t.Fatal("bad radio sample")
		}
		if res.Radio.Usable() && res.Radio.RAT == "5G" {
			fiveG = append(fiveG, res.DownMbps)
		}
	}
	if len(fiveG) < 20 {
		t.Fatalf("too few usable 5G samples: %d", len(fiveG))
	}
	med := stats.Median(fiveG)
	// Georgia eSIM 5G ≈ 31.7 Mbps in the paper; ours is calibrated to it.
	if med < 20 || med > 40 {
		t.Errorf("GEO eSIM 5G median = %.1f, want ~31.7", med)
	}
}

func TestSpeedtestServerNearPGW(t *testing.T) {
	src := rng.New(4)
	// The French eSIM breaks out in Virginia: Ookla server selection
	// follows the public IP, not the user.
	res, err := Speedtest(esim(t, "FRA", src), src)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerCity != "Ashburn" && res.ServerCity != "Dallas" && res.ServerCity != "Miami" {
		t.Errorf("FRA eSIM speedtest server = %s, want a US city near the Virginia PGW", res.ServerCity)
	}
	// The SIM in Pakistan tests against a local server.
	resSIM, err := Speedtest(sim(t, "PAK", src), src)
	if err != nil {
		t.Fatal(err)
	}
	if resSIM.ServerCity != "Islamabad" {
		t.Errorf("PAK SIM speedtest server = %s, want Islamabad", resSIM.ServerCity)
	}
}

func TestCDNFetchOrdering(t *testing.T) {
	src := rng.New(5)
	mean := func(iso string, kind string) float64 {
		var sum float64
		const n = 25
		for i := 0; i < n; i++ {
			var s *airalo.Session
			if kind == "esim" {
				s = esim(t, iso, src)
			} else {
				s = sim(t, iso, src)
			}
			r, err := CDNFetch(s, "Cloudflare", src)
			if err != nil {
				t.Fatal(err)
			}
			sum += r.TotalMs
		}
		return sum / n
	}
	pakESIM := mean("PAK", "esim")
	pakSIM := mean("PAK", "sim")
	deuESIM := mean("DEU", "esim")
	korESIM := mean("KOR", "esim")
	// HR ≫ IHBO > native, and HR eSIM ≫ its physical SIM.
	if pakESIM < pakSIM*2 {
		t.Errorf("PAK eSIM CDN time %.0f should be >= 2x SIM %.0f", pakESIM, pakSIM)
	}
	if pakESIM < deuESIM {
		t.Errorf("HR CDN time %.0f should exceed IHBO %.0f", pakESIM, deuESIM)
	}
	if deuESIM < korESIM {
		t.Errorf("IHBO CDN time %.0f should exceed native %.0f", deuESIM, korESIM)
	}
	if _, err := CDNFetch(esim(t, "PAK", src), "NopeCDN", src); err == nil {
		t.Error("unknown CDN should error")
	}
}

func TestDNSLookupArchitectureEffects(t *testing.T) {
	src := rng.New(6)
	mean := func(s *airalo.Session) float64 {
		var sum float64
		const n = 30
		for i := 0; i < n; i++ {
			r, err := DNSLookup(s, src)
			if err != nil {
				t.Fatal(err)
			}
			sum += r.DurationMs
		}
		return sum / n
	}
	hr := mean(esim(t, "PAK", src))
	hrSIM := mean(sim(t, "PAK", src))
	ihbo := mean(esim(t, "DEU", src))
	ihboSIM := mean(sim(t, "DEU", src))
	if hr < hrSIM*3 {
		t.Errorf("HR DNS %.0f should be >= 3x SIM %.0f (paper: +610%%)", hr, hrSIM)
	}
	if ihbo < ihboSIM {
		t.Errorf("IHBO DNS %.0f should exceed SIM %.0f", ihbo, ihboSIM)
	}
	// IHBO resolver is Google in the PGW country.
	r, err := DNSLookup(esim(t, "DEU", src), src)
	if err != nil {
		t.Fatal(err)
	}
	if r.Resolver.ASN != 15169 {
		t.Errorf("IHBO resolver AS = %v, want Google", r.Resolver.ASN)
	}
	if !r.DoH {
		t.Error("IHBO lookups use DoH (the forgotten Android default)")
	}
	// SIM lookups stay unencrypted on the MNO resolver.
	rs, err := DNSLookup(sim(t, "PAK", src), src)
	if err != nil {
		t.Fatal(err)
	}
	if rs.DoH {
		t.Error("MNO resolvers don't speak DoH")
	}
}

func TestStreamVideoDifferentiation(t *testing.T) {
	src := rng.New(7)
	cfg := video.Config{DurationSec: 150}
	// Pakistan (HR, YouTube-capped): constant 720p despite either SIM.
	stPAK, err := StreamVideo(esim(t, "PAK", src), cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	if stPAK.Share("1080p") > 0.2 {
		t.Errorf("PAK eSIM 1080p share = %.2f, the YouTube cap should hold it at 720p", stPAK.Share("1080p"))
	}
	// Saudi SIM (137 Mbps, generous cap) reaches 1080p+ much more often
	// than its eSIM.
	stSAUsim, err := StreamVideo(sim(t, "SAU", src), cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	stSAUesim, err := StreamVideo(esim(t, "SAU", src), cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	hi := func(st video.Stats) float64 {
		return st.Share("1080p") + st.Share("1440p") + st.Share("2160p")
	}
	if hi(stSAUsim) <= hi(stSAUesim) {
		t.Errorf("SAU SIM high-res share %.2f should exceed eSIM %.2f", hi(stSAUsim), hi(stSAUesim))
	}
}

func TestPGWHopRTTIHBOFasterThanHR(t *testing.T) {
	src := rng.New(8)
	med := func(iso string) float64 {
		var v []float64
		for i := 0; i < 30; i++ {
			r, err := PGWHopRTT(esim(t, iso, src), src)
			if err != nil {
				t.Fatal(err)
			}
			v = append(v, r)
		}
		return stats.Median(v)
	}
	if hr, ihbo := med("ARE"), med("QAT"); ihbo >= hr {
		t.Errorf("QAT IHBO PGW RTT %.0f should beat ARE HR %.0f (similar distances)", ihbo, hr)
	}
}

func TestGeorgiaPacketHostPenalty(t *testing.T) {
	src := rng.New(9)
	w := world(t)
	byProvider := map[string][]float64{}
	for i := 0; i < 200; i++ {
		s, err := w.Deployments["GEO"].AttachESIM(src)
		if err != nil {
			t.Fatal(err)
		}
		rtt, err := PGWHopRTT(s, src)
		if err != nil {
			t.Fatal(err)
		}
		byProvider[s.Provider.Name] = append(byProvider[s.Provider.Name], rtt)
	}
	ph := stats.Median(byProvider["Packet Host"])
	ovh := stats.Median(byProvider["OVH SAS"])
	if ph <= ovh {
		t.Errorf("in Georgia Packet Host (%.0f) should be slower than OVH (%.0f)", ph, ovh)
	}
	// And the reverse in Germany.
	byProvider = map[string][]float64{}
	for i := 0; i < 200; i++ {
		s, _ := w.Deployments["DEU"].AttachESIM(src)
		rtt, err := PGWHopRTT(s, src)
		if err != nil {
			t.Fatal(err)
		}
		byProvider[s.Provider.Name] = append(byProvider[s.Provider.Name], rtt)
	}
	ph = stats.Median(byProvider["Packet Host"])
	ovh = stats.Median(byProvider["OVH SAS"])
	if ph >= ovh {
		t.Errorf("in Germany Packet Host (%.0f) should beat OVH (%.0f) despite more hops", ph, ovh)
	}
}

func TestArchesVisible(t *testing.T) {
	src := rng.New(10)
	if esim(t, "PAK", src).Arch != ipx.HR {
		t.Error("PAK eSIM should be HR")
	}
	if esim(t, "DEU", src).Arch != ipx.IHBO {
		t.Error("DEU eSIM should be IHBO")
	}
	if esim(t, "THA", src).Arch != ipx.Native {
		t.Error("THA eSIM should be native")
	}
}

func TestVoIPProbeByArchitecture(t *testing.T) {
	src := rng.New(11)
	hr, err := VoIPProbe(esim(t, "PAK", src), 150, src)
	if err != nil {
		t.Fatal(err)
	}
	native, err := VoIPProbe(esim(t, "THA", src), 150, src)
	if err != nil {
		t.Fatal(err)
	}
	if hr.OneWayMs <= native.OneWayMs*1.5 {
		t.Errorf("HR one-way %f should far exceed native %f", hr.OneWayMs, native.OneWayMs)
	}
	if hr.JitterMs <= 0 || native.JitterMs <= 0 {
		t.Error("jitter must be measured")
	}
	// HR loss path (configured 1.2%) should lose more than native (0.3%).
	if hr.LossPercent < native.LossPercent {
		t.Errorf("HR loss %f should be at least native %f", hr.LossPercent, native.LossPercent)
	}
}

func TestHypotheticalLBO(t *testing.T) {
	src := rng.New(12)
	w := world(t)
	d := w.Deployments["PAK"]
	lbo, err := d.AttachHypotheticalLBO(src)
	if err != nil {
		t.Fatal(err)
	}
	if lbo.Arch != ipx.LBO {
		t.Errorf("arch = %s, want LBO", lbo.Arch)
	}
	if lbo.Kind != "esim" {
		t.Errorf("kind = %s", lbo.Kind)
	}
	// LBO keeps the roamer policy caps but kills the tunnel latency.
	if lbo.DownCapMbps != d.Spec.ESIMDown {
		t.Errorf("LBO should keep eSIM caps, got %f", lbo.DownCapMbps)
	}
	rttLBO, err := Ping(lbo, TargetGoogle, src)
	if err != nil {
		t.Fatal(err)
	}
	rttHR, err := Ping(esim(t, "PAK", src), TargetGoogle, src)
	if err != nil {
		t.Fatal(err)
	}
	if rttLBO >= rttHR/2 {
		t.Errorf("LBO RTT %f should be far below HR %f", rttLBO, rttHR)
	}
	// Web-only countries have no modeled v-MNO network for LBO.
	if _, err := w.Deployments["FRA"].AttachHypotheticalLBO(src); err == nil {
		t.Error("LBO on a web-only country should error")
	}
}

func TestFormatMTR(t *testing.T) {
	src := rng.New(13)
	tr, err := Traceroute(esim(t, "PAK", src), TargetGoogle, src)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatMTR(tr)
	if !strings.Contains(out, "HOST: PAK/esim -> Google") {
		t.Errorf("header missing:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != len(tr.Raw.Hops)+1 {
		t.Errorf("lines = %d, hops = %d", lines, len(tr.Raw.Hops))
	}
	if !strings.Contains(out, "1.|--") {
		t.Errorf("mtr row format missing:\n%s", out)
	}
	// A silent German CG-NAT shows as ???.
	var sawSilent bool
	for i := 0; i < 10 && !sawSilent; i++ {
		trDE, err := Traceroute(esim(t, "DEU", src), TargetGoogle, src)
		if err != nil {
			t.Fatal(err)
		}
		sawSilent = strings.Contains(FormatMTR(trDE), "???")
	}
	if !sawSilent {
		t.Error("silent hops should render as ??? for the Packet Host CG-NAT")
	}
}

func TestPageLoadArchitectureOrdering(t *testing.T) {
	src := rng.New(14)
	mean := func(iso string) float64 {
		var sum float64
		const n = 12
		for i := 0; i < n; i++ {
			r, err := PageLoad(esim(t, iso, src), src)
			if err != nil {
				t.Fatal(err)
			}
			if r.TotalMs != r.DNSMs+r.HTMLMs+r.ObjectsMs {
				t.Fatal("total must decompose")
			}
			sum += r.TotalMs
		}
		return sum / n
	}
	hr, ihbo, native := mean("PAK"), mean("DEU"), mean("THA")
	if !(hr > ihbo && ihbo > native) {
		t.Errorf("page load should order HR (%.0f) > IHBO (%.0f) > native (%.0f)", hr, ihbo, native)
	}
	// An HR page load is seconds, not milliseconds: every round trip
	// crosses the tunnel.
	if hr < 1500 {
		t.Errorf("HR page load %.0f ms implausibly fast", hr)
	}
}
