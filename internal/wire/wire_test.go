package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// goldenLease is the hand-computed frame for
// LeaseRequest{ME: "me-PAK", Max: 32, Ack: 7}: header R 3 0x03 0x01
// len=12, then tag 1 + len 6 + "me-PAK", tag 2 + 0x20, tag 3 + 0x07.
var goldenLease = []byte("R3\x03\x01\x00\x00\x00\x0c" + "\x01\x06me-PAK" + "\x02\x20" + "\x03\x07")

func TestGoldenLeaseFrame(t *testing.T) {
	got := AppendLeaseRequest(nil, LeaseRequest{ME: "me-PAK", Max: 32, Ack: 7})
	if !bytes.Equal(got, goldenLease) {
		t.Fatalf("golden frame mismatch:\n got %x\nwant %x", got, goldenLease)
	}
	h, err := ParseHeader(got)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != MsgLeaseRequest || int(h.N) != len(got)-HeaderLen {
		t.Fatalf("header = %+v", h)
	}
	req, err := NewDecoder().LeaseRequest(got[HeaderLen:])
	if err != nil {
		t.Fatal(err)
	}
	if req != (LeaseRequest{ME: "me-PAK", Max: 32, Ack: 7}) {
		t.Fatalf("decoded %+v", req)
	}
}

func TestLeaseRequestRoundTrip(t *testing.T) {
	cases := []LeaseRequest{
		{},
		{ME: "me-USA-000041"},
		{ME: "m", Max: 1},
		{ME: "me-PAK", Max: 1024, Ack: 1 << 40},
		{Max: 127}, {Max: 128}, {Max: 16383}, {Max: 16384},
	}
	d := NewDecoder()
	for _, want := range cases {
		frame := AppendLeaseRequest(nil, want)
		h, err := ParseHeader(frame)
		if err != nil {
			t.Fatalf("%+v: %v", want, err)
		}
		got, err := d.LeaseRequest(frame[HeaderLen : HeaderLen+int(h.N)])
		if err != nil {
			t.Fatalf("%+v: %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
		// Canonical form: re-encoding the decoded value reproduces the
		// frame byte for byte.
		if re := AppendLeaseRequest(nil, got); !bytes.Equal(re, frame) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", re, frame)
		}
	}
}

func sampleTasks() []Task {
	return []Task{
		{ID: 1, Kind: "speedtest", Config: "esim"},
		{ID: 2, Kind: "mtr", Target: "sp-singapore", Config: "sim"},
		{ID: 300, Kind: "cdn", Target: "cloudfront", Config: "esim"},
		{}, // zero task: empty record
	}
}

func sampleResults() []Result {
	return []Result{
		{TaskID: 1, ME: "me-PAK-000001", Kind: "speedtest", Config: "esim",
			OK: true, Payload: json.RawMessage(`{"down_mbps":9.4}`)},
		{TaskID: 2, ME: "me-PAK-000001", Kind: "mtr", Config: "sim",
			Error: "probe timeout"},
		{TaskID: 7, ME: "me-USA-000041", Kind: "dns", Config: "esim", OK: true,
			Payload:  json.RawMessage(`{"rtt_ms":31}`),
			Uploaded: time.Unix(0, 1700000000123456789).UTC()},
	}
}

func TestTasksRoundTrip(t *testing.T) {
	want := sampleTasks()
	frame := AppendTasks(nil, want)
	h, err := ParseHeader(frame)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != MsgTasks {
		t.Fatalf("type = %#x", h.Type)
	}
	got, err := NewDecoder().Tasks(frame[HeaderLen:], nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("len = %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("task %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	if re := AppendTasks(nil, got); !bytes.Equal(re, frame) {
		t.Fatalf("re-encode mismatch")
	}

	// Decoding appends: recycled dst keeps its prefix.
	prefix := []Task{{ID: 99, Kind: "keep", Config: "sim"}}
	both, err := NewDecoder().Tasks(frame[HeaderLen:], prefix)
	if err != nil {
		t.Fatal(err)
	}
	if len(both) != 1+len(want) || both[0].ID != 99 || both[1] != want[0] {
		t.Fatalf("append-decode broke the prefix: %+v", both)
	}
}

func TestResultsRoundTrip(t *testing.T) {
	want := sampleResults()
	frame := AppendResults(nil, want)
	h, err := ParseHeader(frame)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != MsgResults {
		t.Fatalf("type = %#x", h.Type)
	}
	got, err := NewDecoder().Results(frame[HeaderLen:], nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("len = %d want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.TaskID != w.TaskID || g.ME != w.ME || g.Kind != w.Kind ||
			g.Config != w.Config || g.OK != w.OK || g.Error != w.Error ||
			!bytes.Equal(g.Payload, w.Payload) || !g.Uploaded.Equal(w.Uploaded) {
			t.Fatalf("result %d: got %+v want %+v", i, g, w)
		}
	}
	if re := AppendResults(nil, got); !bytes.Equal(re, frame) {
		t.Fatalf("re-encode mismatch")
	}
}

// TestResultPayloadAliasing pins the documented ownership contract:
// decoded payloads alias the input buffer, so mutating the buffer
// mutates the decoded result.
func TestResultPayloadAliasing(t *testing.T) {
	frame := AppendResults(nil, []Result{{TaskID: 1, ME: "m", OK: true,
		Payload: json.RawMessage(`{"x":1}`)}})
	got, err := NewDecoder().Results(frame[HeaderLen:], nil)
	if err != nil {
		t.Fatal(err)
	}
	idx := bytes.Index(frame, []byte(`{"x":1}`))
	frame[idx+5] = '9'
	if string(got[0].Payload) != `{"x":9}` {
		t.Fatalf("payload does not alias the frame buffer: %s", got[0].Payload)
	}
}

func TestParseHeaderRejects(t *testing.T) {
	ok := AppendLeaseRequest(nil, LeaseRequest{ME: "m"})
	cases := []struct {
		name   string
		mutate func(b []byte) []byte
		want   string
	}{
		{"short", func(b []byte) []byte { return b[:HeaderLen-1] }, "short header"},
		{"magic0", func(b []byte) []byte { b[0] = 'X'; return b }, "bad magic"},
		{"magic1", func(b []byte) []byte { b[1] = 'X'; return b }, "bad magic"},
		{"version", func(b []byte) []byte { b[2] = 0x02; return b }, "unsupported version"},
		{"type", func(b []byte) []byte { b[3] = 0x7f; return b }, "unknown message type"},
		{"toobig", func(b []byte) []byte { b[4] = 0xff; return b }, "exceeds MaxFrame"},
	}
	for _, tc := range cases {
		b := tc.mutate(append([]byte(nil), ok...))
		if _, err := ParseHeader(b); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestStrictDecodeRejects(t *testing.T) {
	d := NewDecoder()
	lease := func(payload []byte) error { _, err := d.LeaseRequest(payload); return err }
	tasks := func(payload []byte) error { _, err := d.Tasks(payload, nil); return err }
	results := func(payload []byte) error { _, err := d.Results(payload, nil); return err }

	cases := []struct {
		name    string
		dec     func([]byte) error
		payload []byte
		want    error
	}{
		{"lease/unknown-tag", lease, []byte{0x09, 0x01}, errUnknownTag},
		{"lease/tag-order", lease, []byte{0x02, 0x01, 0x01, 0x01, 'x'}, errTagOrder},
		{"lease/repeated-tag", lease, []byte{0x02, 0x01, 0x02, 0x01}, errTagOrder},
		{"lease/zero-max", lease, []byte{0x02, 0x00}, errZeroField},
		{"lease/empty-me", lease, []byte{0x01, 0x00}, errZeroField},
		{"lease/truncated-string", lease, []byte{0x01, 0x05, 'a', 'b'}, errTruncated},
		{"lease/truncated-varint", lease, []byte{0x02, 0x80}, errTruncated},
		{"lease/non-minimal", lease, []byte{0x02, 0x81, 0x00}, errNonMinimal},
		{"lease/overflow", lease, []byte{0x02, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02}, errIntOverflow},
		{"tasks/count-too-big", tasks, []byte{0x05, 0x00}, errCountTooBig},
		{"tasks/record-overrun", tasks, []byte{0x01, 0x09, 0x01, 0x01}, errRecordLength},
		{"tasks/trailing", tasks, []byte{0x01, 0x00, 0xff}, errTrailing},
		{"tasks/bad-record", tasks, []byte{0x01, 0x02, 0x01, 0x00}, errZeroField},
		{"results/bad-bool", results, []byte{0x01, 0x02, 0x05, 0x02}, errBadBool},
		{"results/zero-uploaded", results, []byte{0x01, 0x02, 0x08, 0x00}, errZeroField},
		{"results/unknown-tag", results, []byte{0x01, 0x02, 0x09, 0x01}, errUnknownTag},
	}
	for _, tc := range cases {
		err := tc.dec(tc.payload)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestReadFrame(t *testing.T) {
	frame := AppendTasks(nil, sampleTasks())
	h, payload, err := ReadFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != MsgTasks || !bytes.Equal(payload, frame[HeaderLen:]) {
		t.Fatalf("ReadFrame: h=%+v payload=%x", h, payload)
	}

	// Truncation mid-header and mid-payload must both fail loudly —
	// this is what makes chaos truncation equivalent to v2's JSON
	// decode error.
	for cut := 1; cut < len(frame); cut++ {
		if _, _, err := ReadFrame(bytes.NewReader(frame[:cut]), nil); err == nil {
			t.Fatalf("ReadFrame accepted a frame truncated at %d/%d bytes", cut, len(frame))
		}
	}

	// A pooled buffer with capacity is reused, not reallocated.
	buf := make([]byte, 0, bufCap)
	_, payload, err = ReadFrame(bytes.NewReader(frame), buf)
	if err != nil {
		t.Fatal(err)
	}
	if &payload[0] != &buf[:1][0] {
		t.Fatal("ReadFrame reallocated despite sufficient capacity")
	}
}

// TestCodecZeroAlloc enforces the allocation discipline in plain `go
// test`, independent of -benchmem: steady-state encode and decode of
// every message type performs zero allocations.
func TestCodecZeroAlloc(t *testing.T) {
	tasks := sampleTasks()
	results := sampleResults()
	leaseFrame := AppendLeaseRequest(nil, LeaseRequest{ME: "me-PAK-000001", Max: 32, Ack: 7})
	taskFrame := AppendTasks(nil, tasks)
	resultFrame := AppendResults(nil, results)

	d := NewDecoder()
	// Warm the intern table and scratch capacity once.
	var taskDst []Task
	var resDst []Result
	var err error
	if taskDst, err = d.Tasks(taskFrame[HeaderLen:], taskDst[:0]); err != nil {
		t.Fatal(err)
	}
	if resDst, err = d.Results(resultFrame[HeaderLen:], resDst[:0]); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, bufCap)

	check := func(name string, f func()) {
		t.Helper()
		if n := testing.AllocsPerRun(100, f); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, n)
		}
	}
	check("AppendLeaseRequest", func() {
		buf = AppendLeaseRequest(buf[:0], LeaseRequest{ME: "me-PAK-000001", Max: 32, Ack: 7})
	})
	check("AppendTasks", func() { buf = AppendTasks(buf[:0], tasks) })
	check("AppendResults", func() { buf = AppendResults(buf[:0], results) })
	check("DecodeLeaseRequest", func() {
		if _, err := d.LeaseRequest(leaseFrame[HeaderLen:]); err != nil {
			t.Fatal(err)
		}
	})
	check("DecodeTasks", func() {
		if taskDst, err = d.Tasks(taskFrame[HeaderLen:], taskDst[:0]); err != nil {
			t.Fatal(err)
		}
	})
	check("DecodeResults", func() {
		if resDst, err = d.Results(resultFrame[HeaderLen:], resDst[:0]); err != nil {
			t.Fatal(err)
		}
	})
	rd := bytes.NewReader(nil)
	check("ReadFrame", func() {
		rd.Reset(taskFrame)
		if _, buf, err = ReadFrame(rd, buf[:0]); err != nil {
			t.Fatal(err)
		}
	})
}

// TestInternCap keeps the interning table bounded under a hostile
// stream of unique strings.
func TestInternCap(t *testing.T) {
	d := NewDecoder()
	var frame []byte
	task := []Task{{ID: 1, Config: "sim"}}
	for i := 0; i < maxIntern+100; i++ {
		task[0].Kind = "kind-" + string(rune('a'+i%26)) + time.Duration(i).String()
		frame = AppendTasks(frame[:0], task)
		if _, err := d.Tasks(frame[HeaderLen:], nil); err != nil {
			t.Fatal(err)
		}
	}
	if len(d.intern) > maxIntern {
		t.Fatalf("intern table grew to %d, cap is %d", len(d.intern), maxIntern)
	}
}
