package wire

import (
	"bytes"
	"testing"
)

// Codec micro-benchmarks. All must report 0 allocs/op (run with
// -benchmem); TestCodecZeroAlloc enforces the same bound in plain
// `go test`.

func benchTasks() []Task {
	tasks := make([]Task, 32)
	for i := range tasks {
		tasks[i] = Task{ID: i + 1, Kind: "speedtest", Target: "sp-singapore", Config: "esim"}
	}
	return tasks
}

func benchResults() []Result {
	rs := make([]Result, 32)
	for i := range rs {
		rs[i] = Result{TaskID: i + 1, ME: "me-PAK-000001", Kind: "speedtest",
			Config: "esim", OK: true, Payload: []byte(`{"down_mbps":9.42,"up_mbps":3.11,"ping_ms":87}`)}
	}
	return rs
}

func BenchmarkFrameEncode(b *testing.B) {
	b.Run("lease", func(b *testing.B) {
		req := LeaseRequest{ME: "me-PAK-000001", Max: 32, Ack: 512}
		buf := make([]byte, 0, bufCap)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = AppendLeaseRequest(buf[:0], req)
		}
	})
	b.Run("tasks32", func(b *testing.B) {
		tasks := benchTasks()
		buf := make([]byte, 0, bufCap)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = AppendTasks(buf[:0], tasks)
		}
	})
	b.Run("results32", func(b *testing.B) {
		rs := benchResults()
		buf := make([]byte, 0, bufCap)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = AppendResults(buf[:0], rs)
		}
	})
}

func BenchmarkFrameDecode(b *testing.B) {
	b.Run("lease", func(b *testing.B) {
		frame := AppendLeaseRequest(nil, LeaseRequest{ME: "me-PAK-000001", Max: 32, Ack: 512})
		d := NewDecoder()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := d.LeaseRequest(frame[HeaderLen:]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tasks32", func(b *testing.B) {
		frame := AppendTasks(nil, benchTasks())
		d := NewDecoder()
		var dst []Task
		var err error
		if dst, err = d.Tasks(frame[HeaderLen:], dst); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if dst, err = d.Tasks(frame[HeaderLen:], dst[:0]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("results32", func(b *testing.B) {
		frame := AppendResults(nil, benchResults())
		d := NewDecoder()
		var dst []Result
		var err error
		if dst, err = d.Results(frame[HeaderLen:], dst); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if dst, err = d.Results(frame[HeaderLen:], dst[:0]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkReadFrame(b *testing.B) {
	frame := AppendTasks(nil, benchTasks())
	rd := bytes.NewReader(frame)
	buf := make([]byte, 0, bufCap)
	var err error
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rd.Reset(frame)
		if _, buf, err = ReadFrame(rd, buf[:0]); err != nil {
			b.Fatal(err)
		}
	}
}
