package wire

import (
	"bytes"
	"testing"
)

// decodeFrame routes a full frame through ParseHeader and the matching
// payload decoder, returning the re-encoded frame when decoding
// succeeds.
func decodeFrame(d *Decoder, frame []byte) (reencoded []byte, err error) {
	h, err := ParseHeader(frame)
	if err != nil {
		return nil, err
	}
	if len(frame) != HeaderLen+int(h.N) {
		return nil, errTrailing
	}
	payload := frame[HeaderLen:]
	switch h.Type {
	case MsgLeaseRequest:
		req, err := d.LeaseRequest(payload)
		if err != nil {
			return nil, err
		}
		return AppendLeaseRequest(nil, req), nil
	case MsgTasks:
		tasks, err := d.Tasks(payload, nil)
		if err != nil {
			return nil, err
		}
		return AppendTasks(nil, tasks), nil
	default: // MsgResults; ParseHeader admits no other type
		rs, err := d.Results(payload, nil)
		if err != nil {
			return nil, err
		}
		return AppendResults(nil, rs), nil
	}
}

func fuzzSeeds(f *testing.F) {
	f.Add(AppendLeaseRequest(nil, LeaseRequest{ME: "me-PAK", Max: 32, Ack: 7}))
	f.Add(AppendLeaseRequest(nil, LeaseRequest{}))
	f.Add(AppendTasks(nil, sampleTasks()))
	f.Add(AppendTasks(nil, nil))
	f.Add(AppendResults(nil, sampleResults()))
	f.Add([]byte("R3\x03\x01\x00\x00\x00\x02\x02\x00"))     // zero-valued field
	f.Add([]byte("R3\x03\x02\x00\x00\x00\x02\x05\x00"))     // count > payload
	f.Add([]byte("R3\x03\x03\x00\x00\x00\x03\x01\x81\x00")) // non-minimal varint
	f.Add([]byte("R3\x02\x01\x00\x00\x00\x00"))             // wrong version
	f.Add([]byte{})
}

// FuzzFrameRoundTrip pins the canonical-form contract: any frame the
// strict decoder accepts re-encodes to the byte-identical frame.
func FuzzFrameRoundTrip(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder()
		re, err := decodeFrame(d, data)
		if err != nil {
			return
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("decode+re-encode is not byte-identical:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzFrameDecode hammers the decoders with arbitrary bytes: they must
// never panic and never let header-declared sizes drive allocation
// past the actual input size (the count/record-length guards).
func FuzzFrameDecode(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder()
		if len(data) >= HeaderLen {
			// Also exercise the raw payload decoders directly, without
			// requiring a well-formed header.
			payload := data[HeaderLen:]
			_, _ = d.LeaseRequest(payload)
			_, _ = d.Tasks(payload, nil)
			_, _ = d.Results(payload, nil)
		}
		h, buf, err := ReadFrame(bytes.NewReader(data), nil)
		if err != nil {
			return
		}
		if int(h.N) != len(buf) {
			t.Fatalf("ReadFrame returned %d bytes for a header declaring %d", len(buf), h.N)
		}
	})
}
