package wire

import (
	"errors"
	"fmt"
	"io"
	"math"
	"time"
)

// Strict decoding. Every accepted payload is in canonical form — see
// the package comment — so decode(frame) followed by re-encode
// reproduces the input byte for byte (FuzzFrameRoundTrip pins this).

var (
	errTruncated    = errors.New("wire: truncated payload")
	errNonMinimal   = errors.New("wire: non-minimal varint")
	errTagOrder     = errors.New("wire: field tags not strictly ascending")
	errUnknownTag   = errors.New("wire: unknown field tag")
	errZeroField    = errors.New("wire: zero-valued field encoded (canonical form omits it)")
	errTrailing     = errors.New("wire: trailing bytes after payload")
	errBadBool      = errors.New("wire: boolean field value is not 1")
	errCountTooBig  = errors.New("wire: record count exceeds payload size")
	errIntOverflow  = errors.New("wire: varint overflows int")
	errRecordLength = errors.New("wire: record length exceeds payload")
)

// reader is a strict cursor over one payload.
type reader struct {
	b   []byte
	off int
}

func (r *reader) rem() int { return len(r.b) - r.off }

// uvarint reads a minimal-form LEB128 varint.
func (r *reader) uvarint() (uint64, error) {
	var v uint64
	var shift uint
	start := r.off
	for {
		if r.off >= len(r.b) {
			return 0, errTruncated
		}
		c := r.b[r.off]
		r.off++
		if shift == 63 && c > 1 {
			return 0, errIntOverflow
		}
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			break
		}
		shift += 7
		if shift > 63 {
			return 0, errIntOverflow
		}
	}
	if r.off-start != uvarintLen(v) {
		return 0, errNonMinimal
	}
	return v, nil
}

// uint reads a uvarint that must fit in a non-negative int and must
// not be zero (canonical form omits zero fields).
func (r *reader) uint() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v == 0 {
		return 0, errZeroField
	}
	if v > math.MaxInt64 {
		return 0, errIntOverflow
	}
	return int(v), nil
}

// bytes reads a uvarint length followed by that many raw bytes,
// returned as a subslice of the payload (no copy).
func (r *reader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, errZeroField
	}
	if n > uint64(r.rem()) {
		return nil, errTruncated
	}
	b := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

// maxIntern caps the decoder's string-interning table so a hostile
// peer streaming unique strings cannot grow it without bound; past the
// cap, novel strings fall back to plain allocation.
const maxIntern = 8192

// Decoder decodes v3 payloads. It is NOT safe for concurrent use; pool
// decoders (GetDecoder/PutDecoder) so each request borrows a private
// one. The decoder interns the protocol's small string vocabulary —
// ME names, task kinds, targets, SIM configs, error strings — so
// steady-state decoding performs zero allocations.
type Decoder struct {
	intern map[string]string
}

// NewDecoder returns a Decoder with a warm-capacity intern table.
func NewDecoder() *Decoder {
	return &Decoder{intern: make(map[string]string, 64)}
}

// str interns b as a string. The map lookup keyed by string(b) does
// not allocate (the compiler elides the conversion); only the first
// sighting of a distinct string pays for a copy.
func (d *Decoder) str(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := d.intern[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(d.intern) < maxIntern {
		d.intern[s] = s
	}
	return s
}

// LeaseRequest decodes a MsgLeaseRequest payload. Strings are
// interned; the caller owns clamping (ME required, Max bounds) exactly
// as the v2 JSON path does.
func (d *Decoder) LeaseRequest(payload []byte) (LeaseRequest, error) {
	r := reader{b: payload}
	var req LeaseRequest
	last := byte(0)
	for r.rem() > 0 {
		tag := r.b[r.off]
		r.off++
		if tag <= last {
			return LeaseRequest{}, errTagOrder
		}
		last = tag
		var err error
		switch tag {
		case tagLeaseME:
			var b []byte
			if b, err = r.bytes(); err == nil {
				req.ME = d.str(b)
			}
		case tagLeaseMax:
			req.Max, err = r.uint()
		case tagLeaseAck:
			req.Ack, err = r.uint()
		default:
			return LeaseRequest{}, errUnknownTag
		}
		if err != nil {
			return LeaseRequest{}, err
		}
	}
	return req, nil
}

// record reads one length-prefixed record and returns it as a
// subslice.
func (r *reader) record() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.rem()) {
		return nil, errRecordLength
	}
	rec := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return rec, nil
}

// count reads the leading record count of a tasks/results payload. A
// record costs at least one byte (its length prefix), so any count
// larger than the remaining payload is rejected before any
// preallocation happens.
func (r *reader) count() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(r.rem()) {
		return 0, errCountTooBig
	}
	return int(v), nil
}

// growTasks extends dst by n decodable slots without zeroing recycled
// capacity.
func growTasks(dst []Task, n int) []Task {
	need := len(dst) + n
	if cap(dst) >= need {
		return dst[:need]
	}
	grown := make([]Task, need)
	copy(grown, dst)
	return grown
}

func growResults(dst []Result, n int) []Result {
	need := len(dst) + n
	if cap(dst) >= need {
		return dst[:need]
	}
	grown := make([]Result, need)
	copy(grown, dst)
	return grown
}

// Tasks decodes a MsgTasks payload, appending onto dst (pass a
// recycled slice re-sliced to [:0] to decode allocation-free).
func (d *Decoder) Tasks(payload []byte, dst []Task) ([]Task, error) {
	r := reader{b: payload}
	n, err := r.count()
	if err != nil {
		return dst, err
	}
	base := len(dst)
	dst = growTasks(dst, n)
	for i := 0; i < n; i++ {
		rec, err := r.record()
		if err != nil {
			return dst[:base], err
		}
		if err := d.task(rec, &dst[base+i]); err != nil {
			return dst[:base], err
		}
	}
	if r.rem() != 0 {
		return dst[:base], errTrailing
	}
	return dst, nil
}

func (d *Decoder) task(rec []byte, t *Task) error {
	*t = Task{}
	r := reader{b: rec}
	last := byte(0)
	for r.rem() > 0 {
		tag := r.b[r.off]
		r.off++
		if tag <= last {
			return errTagOrder
		}
		last = tag
		var err error
		var b []byte
		switch tag {
		case tagTaskID:
			t.ID, err = r.uint()
		case tagTaskKind:
			if b, err = r.bytes(); err == nil {
				t.Kind = d.str(b)
			}
		case tagTaskTarget:
			if b, err = r.bytes(); err == nil {
				t.Target = d.str(b)
			}
		case tagTaskConfig:
			if b, err = r.bytes(); err == nil {
				t.Config = d.str(b)
			}
		default:
			return errUnknownTag
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Results decodes a MsgResults payload, appending onto dst.
//
// Ownership: each decoded Result's Payload ALIASES the input payload
// buffer — no copy is made, which is what keeps the decode
// allocation-free. The caller must either consume the results before
// reusing the buffer or detach the payloads onto owned storage first
// (the amigo v3 ingest path copies them onto a per-batch slab before
// the frame buffer returns to its pool).
func (d *Decoder) Results(payload []byte, dst []Result) ([]Result, error) {
	r := reader{b: payload}
	n, err := r.count()
	if err != nil {
		return dst, err
	}
	base := len(dst)
	dst = growResults(dst, n)
	for i := 0; i < n; i++ {
		rec, err := r.record()
		if err != nil {
			return dst[:base], err
		}
		if err := d.result(rec, &dst[base+i]); err != nil {
			return dst[:base], err
		}
	}
	if r.rem() != 0 {
		return dst[:base], errTrailing
	}
	return dst, nil
}

func (d *Decoder) result(rec []byte, res *Result) error {
	*res = Result{}
	r := reader{b: rec}
	last := byte(0)
	for r.rem() > 0 {
		tag := r.b[r.off]
		r.off++
		if tag <= last {
			return errTagOrder
		}
		last = tag
		var err error
		var b []byte
		switch tag {
		case tagResultTaskID:
			res.TaskID, err = r.uint()
		case tagResultME:
			if b, err = r.bytes(); err == nil {
				res.ME = d.str(b)
			}
		case tagResultKind:
			if b, err = r.bytes(); err == nil {
				res.Kind = d.str(b)
			}
		case tagResultConfig:
			if b, err = r.bytes(); err == nil {
				res.Config = d.str(b)
			}
		case tagResultOK:
			var v uint64
			if v, err = r.uvarint(); err == nil && v != 1 {
				err = errBadBool
			}
			res.OK = true
		case tagResultError:
			if b, err = r.bytes(); err == nil {
				res.Error = d.str(b)
			}
		case tagResultPayload:
			if b, err = r.bytes(); err == nil {
				res.Payload = b // aliases the payload buffer; see Results
			}
		case tagResultUploaded:
			var v uint64
			if v, err = r.uvarint(); err == nil {
				if v == 0 {
					err = errZeroField
				} else {
					res.Uploaded = time.Unix(0, int64(v)).UTC()
				}
			}
		default:
			return errUnknownTag
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// FirstResultME returns the ME name of the first record in a
// MsgResults payload without decoding the whole batch — the shard
// gateway's routing peek: one upload batch always belongs to a single
// ME, so the first record names the owning shard. An empty batch
// returns "". The decode of that first record is as strict as Results;
// the remaining records are not validated here (the target shard's
// handler decodes the full frame).
func (d *Decoder) FirstResultME(payload []byte) (string, error) {
	r := reader{b: payload}
	n, err := r.count()
	if err != nil {
		return "", err
	}
	if n == 0 {
		return "", nil
	}
	rec, err := r.record()
	if err != nil {
		return "", err
	}
	var res Result
	if err := d.result(rec, &res); err != nil {
		return "", err
	}
	return res.ME, nil
}

// ReadFrame reads exactly one frame from rd: the fixed header, then a
// payload of the header-declared length into buf (grown once if its
// capacity is short — pass a pooled buffer re-sliced to [:0] and the
// steady state reads allocation-free). It returns the parsed header
// and the buffer with len == payload length; the caller keeps
// ownership of (and should re-pool) the returned buffer.
func ReadFrame(rd io.Reader, buf []byte) (Header, []byte, error) {
	// The header is read into buf (not a local array) so that nothing
	// escapes into the heap through the io.Reader interface; the
	// payload then overwrites it.
	if cap(buf) < HeaderLen {
		buf = make([]byte, HeaderLen)
	}
	if _, err := io.ReadFull(rd, buf[:HeaderLen]); err != nil {
		return Header{}, buf[:0], fmt.Errorf("wire: reading header: %w", err)
	}
	h, err := ParseHeader(buf[:HeaderLen])
	if err != nil {
		return Header{}, buf[:0], err
	}
	n := int(h.N)
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(rd, buf); err != nil {
		return Header{}, buf[:0], fmt.Errorf("wire: reading payload: %w", err)
	}
	return h, buf, nil
}
