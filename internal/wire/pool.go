package wire

import "sync"

// Pools for the steady-state hot path. Buffers travel as *[]byte so
// the pool's interface boxing doesn't itself allocate per Put
// (SA6002); callers re-slice to [:0] on Get and hand the same pointer
// back on Put.

// bufCap is the initial capacity of pooled buffers: comfortably one
// max-size lease batch (1024 tasks × tens of bytes) or a typical
// result batch without growth.
const bufCap = 64 << 10

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, bufCap)
		return &b
	},
}

// GetBuf borrows a zero-length encode/read buffer from the pool.
func GetBuf() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuf returns a buffer to the pool. The caller must not retain any
// slice aliasing it (see Decoder.Results for the payload-aliasing
// hazard this implies).
func PutBuf(b *[]byte) {
	if b == nil || cap(*b) > MaxFrame {
		return // don't cache pathological growth
	}
	bufPool.Put(b)
}

var decPool = sync.Pool{
	New: func() any { return NewDecoder() },
}

// GetDecoder borrows a Decoder (with its warm intern table) from the
// pool.
func GetDecoder() *Decoder { return decPool.Get().(*Decoder) }

// PutDecoder returns a Decoder to the pool. Interned strings persist
// across uses — that is the point: the fleet's vocabulary (ME names,
// kinds, configs) is small and stable, so a recycled decoder decodes
// without allocating.
func PutDecoder(d *Decoder) { decPool.Put(d) }
