// Package wire is the v3 binary wire protocol for the AmiGo control
// plane: a length-prefixed, versioned frame codec for the lease
// request/response and result-batch payloads that the v2 JSON protocol
// ships as text. At fleet scale (10k+ MEs) `encoding/json` dominates
// the control-plane CPU profile on both ends; wire replaces it with
// `binary.BigEndian` field packing in the style of internal/gtp —
// varint-packed integers and strings, explicit single-byte field tags —
// while leaving the protocol *semantics* (ack-cursor leases,
// idempotency keys, 429/Retry-After backpressure) untouched, so v2
// remains the byte-identical compatibility oracle.
//
// # Frame layout
//
//	offset  bytes  field
//	0       1      magic 'R' (0x52)
//	1       1      magic '3' (0x33)
//	2       1      protocol version (0x03)
//	3       1      message type (MsgLeaseRequest / MsgTasks / MsgResults)
//	4       4      payload length, uint32 big-endian (<= MaxFrame)
//	8       N      payload
//
// # Payload grammar
//
// Integers are unsigned LEB128 varints ("uvarint"), strings and byte
// fields are a uvarint length followed by raw bytes. A record is a
// uvarint byte-length followed by its fields; each field is a
// single-byte tag followed by its value. The lease-request payload is
// one bare field sequence (no record prefix); the tasks and results
// payloads are a uvarint record count followed by that many records.
//
// # Canonical form
//
// Encoding is canonical and decoding is strict: fields appear in
// ascending tag order, zero-valued fields (0, "", empty bytes, false,
// zero time) are omitted, varints are minimal-length, and unknown or
// repeated tags are rejected. The payoff is the round-trip contract the
// fuzzers pin: any frame that decodes successfully re-encodes to the
// byte-identical frame, so v3 captures can be diffed, deduplicated and
// replayed as raw bytes.
//
// # Allocation discipline
//
// The codec is allocation-free in steady state: encoders append into
// caller-owned (poolable, see GetBuf) buffers, ReadFrame sizes its
// scratch from the frame header, Decoder interns the small string
// vocabulary (ME names, task kinds, SIM configs), and decoded result
// payloads alias the input buffer rather than copying — the caller
// owns the copy-out decision (see Decoder.Results). TestCodecZeroAlloc
// enforces 0 allocs/op for every encode and decode path.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"time"
)

// Task is one instrumentation command for an ME. It is defined here —
// rather than in internal/amigo, which aliases it — so the JSON (v1/v2)
// and binary (v3) codecs share one canonical struct.
type Task struct {
	ID   int    `json:"id"`
	Kind string `json:"kind"` // "speedtest", "mtr", "cdn", "dns", "video"
	// Target parameterizes the task (SP name, CDN provider, ...).
	Target string `json:"target,omitempty"`
	// Config selects the SIM profile: "sim" or "esim".
	Config string `json:"config"`
}

// Result is an uploaded observation.
type Result struct {
	TaskID   int             `json:"task_id"`
	ME       string          `json:"me"`
	Kind     string          `json:"kind"`
	Config   string          `json:"config"`
	OK       bool            `json:"ok"`
	Error    string          `json:"error,omitempty"`
	Payload  json.RawMessage `json:"payload,omitempty"`
	Uploaded time.Time       `json:"uploaded"`
}

// LeaseRequest is the v3 lease body: lease up to Max tasks,
// acknowledging every previously delivered task ID <= Ack.
type LeaseRequest struct {
	ME  string
	Max int
	Ack int
}

// Frame constants.
const (
	Magic0  = 'R'
	Magic1  = '3'
	Version = 0x03
	// HeaderLen is the fixed frame header size.
	HeaderLen = 8
	// MaxFrame caps the payload length a header may declare (16 MiB);
	// a hostile or corrupt header cannot make ReadFrame balloon memory.
	MaxFrame = 1 << 24
)

// Message types.
const (
	MsgLeaseRequest byte = 0x01 // client -> server: LeaseRequest
	MsgTasks        byte = 0x02 // server -> client: []Task lease response
	MsgResults      byte = 0x03 // client -> server: []Result batch upload
)

// ContentType is the media type v3 frames travel under; the v3 HTTP
// handlers negotiate on it (anything else is 415) so a misdirected JSON
// client gets a typed refusal instead of a decode error.
const ContentType = "application/vnd.amigo.v3"

// Field tags. Tags are per-message-type namespaces; within a record
// they must appear in strictly ascending order.
const (
	// LeaseRequest fields.
	tagLeaseME  = 0x01 // string
	tagLeaseMax = 0x02 // uvarint
	tagLeaseAck = 0x03 // uvarint

	// Task fields.
	tagTaskID     = 0x01 // uvarint
	tagTaskKind   = 0x02 // string
	tagTaskTarget = 0x03 // string
	tagTaskConfig = 0x04 // string

	// Result fields.
	tagResultTaskID   = 0x01 // uvarint
	tagResultME       = 0x02 // string
	tagResultKind     = 0x03 // string
	tagResultConfig   = 0x04 // string
	tagResultOK       = 0x05 // uvarint, always 1 (false is omitted)
	tagResultError    = 0x06 // string
	tagResultPayload  = 0x07 // bytes
	tagResultUploaded = 0x08 // uvarint, UnixNano (zero time omitted)
)

// Header is a parsed frame header.
type Header struct {
	Type byte
	// N is the payload length the header declares.
	N uint32
}

// ParseHeader validates the fixed 8-byte header.
func ParseHeader(b []byte) (Header, error) {
	if len(b) < HeaderLen {
		return Header{}, fmt.Errorf("wire: short header (%d bytes)", len(b))
	}
	if b[0] != Magic0 || b[1] != Magic1 {
		return Header{}, fmt.Errorf("wire: bad magic 0x%02x%02x", b[0], b[1])
	}
	if b[2] != Version {
		return Header{}, fmt.Errorf("wire: unsupported version %d", b[2])
	}
	typ := b[3]
	if typ != MsgLeaseRequest && typ != MsgTasks && typ != MsgResults {
		return Header{}, fmt.Errorf("wire: unknown message type 0x%02x", typ)
	}
	n := binary.BigEndian.Uint32(b[4:8])
	if n > MaxFrame {
		return Header{}, fmt.Errorf("wire: payload length %d exceeds MaxFrame", n)
	}
	return Header{Type: typ, N: n}, nil
}

// uvarintLen returns the minimal LEB128 encoding length of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// fieldUintLen is the encoded size of a tagged uvarint field (0 when
// canonically omitted).
func fieldUintLen(v uint64) int {
	if v == 0 {
		return 0
	}
	return 1 + uvarintLen(v)
}

// fieldBytesLen is the encoded size of a tagged string/bytes field.
func fieldBytesLen(n int) int {
	if n == 0 {
		return 0
	}
	return 1 + uvarintLen(uint64(n)) + n
}

func appendFieldUint(dst []byte, tag byte, v uint64) []byte {
	if v == 0 {
		return dst
	}
	dst = append(dst, tag)
	return binary.AppendUvarint(dst, v)
}

func appendFieldString(dst []byte, tag byte, s string) []byte {
	if s == "" {
		return dst
	}
	dst = append(dst, tag)
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendFieldBytes(dst []byte, tag byte, b []byte) []byte {
	if len(b) == 0 {
		return dst
	}
	dst = append(dst, tag)
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// beginFrame appends the 8-byte header with a zero length and returns
// the header's offset; endFrame patches the payload length in.
func beginFrame(dst []byte, typ byte) ([]byte, int) {
	start := len(dst)
	return append(dst, Magic0, Magic1, Version, typ, 0, 0, 0, 0), start
}

func endFrame(dst []byte, start int) []byte {
	binary.BigEndian.PutUint32(dst[start+4:start+8], uint32(len(dst)-start-HeaderLen))
	return dst
}

// uploadedNano is the wire value of a Result's Uploaded stamp: the
// UnixNano reinterpreted as uint64, with the zero time mapped to 0 so
// the (usual) unstamped client-side result omits the field entirely.
func uploadedNano(t time.Time) uint64 {
	if t.IsZero() {
		return 0
	}
	return uint64(t.UnixNano())
}

// AppendLeaseRequest appends a complete MsgLeaseRequest frame to dst
// and returns the extended slice. Negative Max/Ack must be clamped by
// the caller (the amigo handlers clamp exactly as v2 does).
func AppendLeaseRequest(dst []byte, req LeaseRequest) []byte {
	dst, start := beginFrame(dst, MsgLeaseRequest)
	dst = appendFieldString(dst, tagLeaseME, req.ME)
	dst = appendFieldUint(dst, tagLeaseMax, uint64(req.Max))
	dst = appendFieldUint(dst, tagLeaseAck, uint64(req.Ack))
	return endFrame(dst, start)
}

func taskRecordLen(t *Task) int {
	return fieldUintLen(uint64(t.ID)) +
		fieldBytesLen(len(t.Kind)) +
		fieldBytesLen(len(t.Target)) +
		fieldBytesLen(len(t.Config))
}

// AppendTasks appends a complete MsgTasks frame (the lease response)
// to dst and returns the extended slice.
func AppendTasks(dst []byte, tasks []Task) []byte {
	dst, start := beginFrame(dst, MsgTasks)
	dst = binary.AppendUvarint(dst, uint64(len(tasks)))
	for i := range tasks {
		t := &tasks[i]
		dst = binary.AppendUvarint(dst, uint64(taskRecordLen(t)))
		dst = appendFieldUint(dst, tagTaskID, uint64(t.ID))
		dst = appendFieldString(dst, tagTaskKind, t.Kind)
		dst = appendFieldString(dst, tagTaskTarget, t.Target)
		dst = appendFieldString(dst, tagTaskConfig, t.Config)
	}
	return endFrame(dst, start)
}

func resultRecordLen(r *Result) int {
	n := fieldUintLen(uint64(r.TaskID)) +
		fieldBytesLen(len(r.ME)) +
		fieldBytesLen(len(r.Kind)) +
		fieldBytesLen(len(r.Config)) +
		fieldBytesLen(len(r.Error)) +
		fieldBytesLen(len(r.Payload)) +
		fieldUintLen(uploadedNano(r.Uploaded))
	if r.OK {
		n += 2 // tag + uvarint(1)
	}
	return n
}

// AppendResults appends a complete MsgResults frame (the batch upload)
// to dst and returns the extended slice.
func AppendResults(dst []byte, rs []Result) []byte {
	dst, start := beginFrame(dst, MsgResults)
	dst = binary.AppendUvarint(dst, uint64(len(rs)))
	for i := range rs {
		r := &rs[i]
		dst = binary.AppendUvarint(dst, uint64(resultRecordLen(r)))
		dst = appendFieldUint(dst, tagResultTaskID, uint64(r.TaskID))
		dst = appendFieldString(dst, tagResultME, r.ME)
		dst = appendFieldString(dst, tagResultKind, r.Kind)
		dst = appendFieldString(dst, tagResultConfig, r.Config)
		if r.OK {
			dst = appendFieldUint(dst, tagResultOK, 1)
		}
		dst = appendFieldString(dst, tagResultError, r.Error)
		dst = appendFieldBytes(dst, tagResultPayload, r.Payload)
		dst = appendFieldUint(dst, tagResultUploaded, uploadedNano(r.Uploaded))
	}
	return endFrame(dst, start)
}
