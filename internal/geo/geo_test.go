package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceKnownPairs(t *testing.T) {
	// Reference great-circle distances (km), tolerance 1.5%.
	cases := []struct {
		a, b Point
		want float64
		name string
	}{
		{Point{51.51, -0.13}, Point{40.71, -74.01}, 5570, "London-NewYork"},
		{Point{1.35, 103.82}, Point{25.20, 55.27}, 5840, "Singapore-Dubai"},
		{Point{48.86, 2.35}, Point{52.37, 4.90}, 430, "Paris-Amsterdam"},
		{Point{33.68, 73.05}, Point{1.35, 103.82}, 4815, "Islamabad-Singapore"},
		{Point{37.57, 126.98}, Point{37.57, 126.98}, 0, "Seoul-Seoul"},
	}
	for _, c := range cases {
		got := DistanceKm(c.a, c.b)
		if c.want == 0 {
			if got != 0 {
				t.Errorf("%s: got %f, want 0", c.name, got)
			}
			continue
		}
		if math.Abs(got-c.want)/c.want > 0.015 {
			t.Errorf("%s: got %.0f km, want ~%.0f km", c.name, got, c.want)
		}
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{clampLat(lat1), clampLon(lon1)}
		b := Point{clampLat(lat2), clampLon(lon2)}
		d1, d2 := DistanceKm(a, b), DistanceKm(b, a)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2, lat3, lon3 float64) bool {
		a := Point{clampLat(lat1), clampLon(lon1)}
		b := Point{clampLat(lat2), clampLon(lon2)}
		c := Point{clampLat(lat3), clampLon(lon3)}
		return DistanceKm(a, c) <= DistanceKm(a, b)+DistanceKm(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceBounds(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{clampLat(lat1), clampLon(lon1)}
		b := Point{clampLat(lat2), clampLon(lon2)}
		d := DistanceKm(a, b)
		// Max great-circle distance is half the circumference.
		return d >= 0 && d <= math.Pi*EarthRadiusKm+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func clampLat(v float64) float64 { return math.Mod(math.Abs(v), 180) - 90 }
func clampLon(v float64) float64 { return math.Mod(math.Abs(v), 360) - 180 }

func TestPropagationDelay(t *testing.T) {
	// London-New York one way: ~5570 km * 1.9 / 200 ≈ 53 ms.
	d := PropagationDelayMs(Point{51.51, -0.13}, Point{40.71, -74.01})
	if d < 40 || d > 70 {
		t.Errorf("London-NY propagation %f ms, want 40-70 ms", d)
	}
	if PropagationDelayMs(Point{1, 1}, Point{1, 1}) != 0 {
		t.Error("zero-distance delay must be 0")
	}
}

func TestMidpoint(t *testing.T) {
	a := Point{0, 0}
	b := Point{0, 90}
	m := Midpoint(a, b)
	if math.Abs(m.Lat) > 1e-9 || math.Abs(m.Lon-45) > 1e-9 {
		t.Errorf("midpoint of equatorial quarter = %v, want (0,45)", m)
	}
	// Midpoint must be roughly equidistant from both endpoints.
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		p := Point{clampLat(lat1), clampLon(lon1)}
		q := Point{clampLat(lat2), clampLon(lon2)}
		m := Midpoint(p, q)
		if !m.Valid() {
			return false
		}
		dp, dq := DistanceKm(p, m), DistanceKm(q, m)
		return math.Abs(dp-dq) < 1.0 // within 1 km
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLookupCountry(t *testing.T) {
	c, err := LookupCountry("PAK")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "Pakistan" || c.Continent != Asia {
		t.Errorf("unexpected Pakistan record: %+v", c)
	}
	if _, err := LookupCountry("XXX"); err == nil {
		t.Error("expected error for unknown country")
	}
}

func TestMustCountryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCountry should panic on unknown code")
		}
	}()
	MustCountry("ZZZ")
}

func TestPaperCountriesPresent(t *testing.T) {
	// All 24 visited countries from the two campaigns must exist.
	visited := []string{
		"ITA", "CHN", "MDA", "FRA", "AZE", "MDV", "MYS", "KEN", "USA",
		"FIN", "PAK", "EGY", "TUR", "UZB", // web campaign
		"GEO", "DEU", "KOR", "QAT", "SAU", "ESP", "THA", "ARE", "GBR",
		"JPN", // device campaign + Table 2
	}
	if len(visited) != 24 {
		t.Fatalf("test list has %d countries, want 24", len(visited))
	}
	for _, iso := range visited {
		if _, err := LookupCountry(iso); err != nil {
			t.Errorf("missing visited country %s", iso)
		}
	}
	// b-MNO home countries.
	for _, iso := range []string{"SGP", "POL", "USA", "ITA", "FRA"} {
		if _, err := LookupCountry(iso); err != nil {
			t.Errorf("missing b-MNO country %s", iso)
		}
	}
}

func TestPaperCitiesPresent(t *testing.T) {
	for _, name := range []string{
		"Amsterdam", "Ashburn", "Lille", "Wattrelos", "London",
		"Dallas", "Fort Worth", "Tulsa", "Singapore", "Seoul",
		"Goyang", "Cheonan", "Dublin",
	} {
		if _, err := LookupCity(name); err != nil {
			t.Errorf("missing city %s", name)
		}
	}
}

func TestCitiesMatchCountries(t *testing.T) {
	for _, c := range cities {
		if _, err := LookupCountry(c.Country); err != nil {
			t.Errorf("city %s references unknown country %s", c.Name, c.Country)
		}
		if !c.Loc.Valid() || c.Loc.IsZero() {
			t.Errorf("city %s has invalid location %v", c.Name, c.Loc)
		}
	}
}

func TestCountriesSortedAndDistinct(t *testing.T) {
	all := Countries()
	if len(all) < 50 {
		t.Fatalf("world database too small: %d countries", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].ISO3 >= all[i].ISO3 {
			t.Fatalf("Countries() not sorted at %d: %s >= %s", i, all[i-1].ISO3, all[i].ISO3)
		}
	}
}

func TestCountriesIn(t *testing.T) {
	eu := CountriesIn(Europe)
	if len(eu) < 10 {
		t.Errorf("expected at least 10 European countries, got %d", len(eu))
	}
	for _, c := range eu {
		if c.Continent != Europe {
			t.Errorf("%s leaked into Europe list", c.ISO3)
		}
	}
	// Central American countries must exist for Figure 18's hot spot.
	na := CountriesIn(NorthAmerica)
	var central int
	for _, c := range na {
		switch c.ISO3 {
		case "CRI", "PAN", "GTM", "HND", "NIC", "SLV", "BLZ":
			central++
		}
	}
	if central < 5 {
		t.Errorf("need ≥5 Central American countries for Fig 18, got %d", central)
	}
}

func TestPointStringAndValid(t *testing.T) {
	p := Point{51.5074, -0.1278}
	if p.String() != "(51.5074, -0.1278)" {
		t.Errorf("String() = %s", p.String())
	}
	if !p.Valid() {
		t.Error("valid point reported invalid")
	}
	if (Point{91, 0}).Valid() || (Point{0, 181}).Valid() {
		t.Error("out-of-range point reported valid")
	}
}
