package geo

import (
	"fmt"
	"sort"
)

// countries is the built-in world database. It covers every country that
// appears in the paper's campaigns (visited countries, b-MNO home
// countries, PGW countries) plus enough additional countries per continent
// for the marketplace analysis to produce meaningful continent-level
// statistics (Figures 16–18).
var countries = []Country{
	// Visited countries, web-based campaign (Table 3).
	{"ITA", "Italy", Europe, "Rome", Point{41.90, 12.50}},
	{"CHN", "China", Asia, "Beijing", Point{39.90, 116.40}},
	{"MDA", "Moldova", Europe, "Chisinau", Point{47.01, 28.86}},
	{"FRA", "France", Europe, "Paris", Point{48.86, 2.35}},
	{"AZE", "Azerbaijan", Asia, "Baku", Point{40.41, 49.87}},
	{"MDV", "Maldives", Asia, "Male", Point{4.18, 73.51}},
	{"MYS", "Malaysia", Asia, "Kuala Lumpur", Point{3.14, 101.69}},
	{"KEN", "Kenya", Africa, "Nairobi", Point{-1.29, 36.82}},
	{"USA", "United States", NorthAmerica, "New York", Point{40.71, -74.01}},
	{"FIN", "Finland", Europe, "Helsinki", Point{60.17, 24.94}},
	{"EGY", "Egypt", Africa, "Cairo", Point{30.04, 31.24}},
	{"TUR", "Turkey", Asia, "Istanbul", Point{41.01, 28.98}},
	{"UZB", "Uzbekistan", Asia, "Tashkent", Point{41.30, 69.24}},
	// Visited countries, device-based campaign (Table 4).
	{"GEO", "Georgia", Asia, "Tbilisi", Point{41.72, 44.79}},
	{"DEU", "Germany", Europe, "Berlin", Point{52.52, 13.40}},
	{"KOR", "South Korea", Asia, "Seoul", Point{37.57, 126.98}},
	{"PAK", "Pakistan", Asia, "Islamabad", Point{33.68, 73.05}},
	{"QAT", "Qatar", Asia, "Doha", Point{25.29, 51.53}},
	{"SAU", "Saudi Arabia", Asia, "Riyadh", Point{24.71, 46.68}},
	{"ESP", "Spain", Europe, "Madrid", Point{40.42, -3.70}},
	{"THA", "Thailand", Asia, "Bangkok", Point{13.76, 100.50}},
	{"ARE", "United Arab Emirates", Asia, "Dubai", Point{25.20, 55.27}},
	{"GBR", "United Kingdom", Europe, "London", Point{51.51, -0.13}},
	{"JPN", "Japan", Asia, "Tokyo", Point{35.68, 139.69}},
	// b-MNO home / PGW countries not already above.
	{"SGP", "Singapore", Asia, "Singapore", Point{1.35, 103.82}},
	{"POL", "Poland", Europe, "Warsaw", Point{52.23, 21.01}},
	{"NLD", "Netherlands", Europe, "Amsterdam", Point{52.37, 4.90}},
	{"IRL", "Ireland", Europe, "Dublin", Point{53.35, -6.26}},
	// Additional countries for the marketplace (continent coverage).
	{"PRT", "Portugal", Europe, "Lisbon", Point{38.72, -9.14}},
	{"GRC", "Greece", Europe, "Athens", Point{37.98, 23.73}},
	{"CHE", "Switzerland", Europe, "Zurich", Point{47.38, 8.54}},
	{"AUT", "Austria", Europe, "Vienna", Point{48.21, 16.37}},
	{"SWE", "Sweden", Europe, "Stockholm", Point{59.33, 18.07}},
	{"NOR", "Norway", Europe, "Oslo", Point{59.91, 10.75}},
	{"CZE", "Czechia", Europe, "Prague", Point{50.08, 14.44}},
	{"ROU", "Romania", Europe, "Bucharest", Point{44.43, 26.10}},
	{"IND", "India", Asia, "Delhi", Point{28.61, 77.21}},
	{"IDN", "Indonesia", Asia, "Jakarta", Point{-6.21, 106.85}},
	{"VNM", "Vietnam", Asia, "Hanoi", Point{21.03, 105.85}},
	{"PHL", "Philippines", Asia, "Manila", Point{14.60, 120.98}},
	{"KAZ", "Kazakhstan", Asia, "Almaty", Point{43.24, 76.89}},
	{"ISR", "Israel", Asia, "Tel Aviv", Point{32.09, 34.78}},
	{"JOR", "Jordan", Asia, "Amman", Point{31.95, 35.93}},
	{"LKA", "Sri Lanka", Asia, "Colombo", Point{6.93, 79.85}},
	{"MAR", "Morocco", Africa, "Rabat", Point{34.02, -6.84}},
	{"ZAF", "South Africa", Africa, "Johannesburg", Point{-26.20, 28.05}},
	{"NGA", "Nigeria", Africa, "Lagos", Point{6.52, 3.38}},
	{"TZA", "Tanzania", Africa, "Dar es Salaam", Point{-6.79, 39.21}},
	{"GHA", "Ghana", Africa, "Accra", Point{5.60, -0.19}},
	{"TUN", "Tunisia", Africa, "Tunis", Point{36.81, 10.18}},
	{"CAN", "Canada", NorthAmerica, "Toronto", Point{43.65, -79.38}},
	{"MEX", "Mexico", NorthAmerica, "Mexico City", Point{19.43, -99.13}},
	{"CRI", "Costa Rica", NorthAmerica, "San Jose", Point{9.93, -84.08}},
	{"PAN", "Panama", NorthAmerica, "Panama City", Point{8.98, -79.52}},
	{"GTM", "Guatemala", NorthAmerica, "Guatemala City", Point{14.63, -90.51}},
	{"HND", "Honduras", NorthAmerica, "Tegucigalpa", Point{14.07, -87.19}},
	{"NIC", "Nicaragua", NorthAmerica, "Managua", Point{12.11, -86.24}},
	{"SLV", "El Salvador", NorthAmerica, "San Salvador", Point{13.69, -89.22}},
	{"BLZ", "Belize", NorthAmerica, "Belmopan", Point{17.25, -88.77}},
	{"BRA", "Brazil", SouthAmerica, "Sao Paulo", Point{-23.55, -46.63}},
	{"ARG", "Argentina", SouthAmerica, "Buenos Aires", Point{-34.60, -58.38}},
	{"CHL", "Chile", SouthAmerica, "Santiago", Point{-33.45, -70.67}},
	{"COL", "Colombia", SouthAmerica, "Bogota", Point{4.71, -74.07}},
	{"PER", "Peru", SouthAmerica, "Lima", Point{-12.05, -77.04}},
	{"AUS", "Australia", Oceania, "Sydney", Point{-33.87, 151.21}},
	{"NZL", "New Zealand", Oceania, "Auckland", Point{-36.85, 174.76}},
	{"FJI", "Fiji", Oceania, "Suva", Point{-18.14, 178.44}},
	// Extended marketplace coverage (toward the paper's 244 regions).
	{"BEL", "Belgium", Europe, "Brussels", Point{50.85, 4.35}},
	{"DNK", "Denmark", Europe, "Copenhagen", Point{55.68, 12.57}},
	{"HUN", "Hungary", Europe, "Budapest", Point{47.50, 19.04}},
	{"BGR", "Bulgaria", Europe, "Sofia", Point{42.70, 23.32}},
	{"HRV", "Croatia", Europe, "Zagreb", Point{45.81, 15.98}},
	{"SRB", "Serbia", Europe, "Belgrade", Point{44.79, 20.45}},
	{"UKR", "Ukraine", Europe, "Kyiv", Point{50.45, 30.52}},
	{"ISL", "Iceland", Europe, "Reykjavik", Point{64.15, -21.94}},
	{"EST", "Estonia", Europe, "Tallinn", Point{59.44, 24.75}},
	{"LVA", "Latvia", Europe, "Riga", Point{56.95, 24.11}},
	{"LTU", "Lithuania", Europe, "Vilnius", Point{54.69, 25.28}},
	{"SVK", "Slovakia", Europe, "Bratislava", Point{48.15, 17.11}},
	{"SVN", "Slovenia", Europe, "Ljubljana", Point{46.06, 14.51}},
	{"IRN", "Iran", Asia, "Tehran", Point{35.69, 51.39}},
	{"IRQ", "Iraq", Asia, "Baghdad", Point{33.31, 44.37}},
	{"KWT", "Kuwait", Asia, "Kuwait City", Point{29.38, 47.99}},
	{"OMN", "Oman", Asia, "Muscat", Point{23.59, 58.41}},
	{"BHR", "Bahrain", Asia, "Manama", Point{26.23, 50.59}},
	{"NPL", "Nepal", Asia, "Kathmandu", Point{27.72, 85.32}},
	{"BGD", "Bangladesh", Asia, "Dhaka", Point{23.81, 90.41}},
	{"KHM", "Cambodia", Asia, "Phnom Penh", Point{11.56, 104.92}},
	{"LAO", "Laos", Asia, "Vientiane", Point{17.98, 102.63}},
	{"MMR", "Myanmar", Asia, "Yangon", Point{16.87, 96.20}},
	{"MNG", "Mongolia", Asia, "Ulaanbaatar", Point{47.89, 106.91}},
	{"TWN", "Taiwan", Asia, "Taipei", Point{25.03, 121.57}},
	{"HKG", "Hong Kong SAR", Asia, "Hong Kong City", Point{22.32, 114.17}},
	{"DZA", "Algeria", Africa, "Algiers", Point{36.74, 3.09}},
	{"ETH", "Ethiopia", Africa, "Addis Ababa", Point{9.03, 38.74}},
	{"UGA", "Uganda", Africa, "Kampala", Point{0.35, 32.58}},
	{"SEN", "Senegal", Africa, "Dakar", Point{14.69, -17.45}},
	{"CIV", "Ivory Coast", Africa, "Abidjan", Point{5.34, -4.03}},
	{"CMR", "Cameroon", Africa, "Yaounde", Point{3.85, 11.50}},
	{"MOZ", "Mozambique", Africa, "Maputo", Point{-25.97, 32.58}},
	{"ZWE", "Zimbabwe", Africa, "Harare", Point{-17.83, 31.05}},
	{"DOM", "Dominican Republic", NorthAmerica, "Santo Domingo", Point{18.49, -69.93}},
	{"JAM", "Jamaica", NorthAmerica, "Kingston", Point{17.97, -76.79}},
	{"CUB", "Cuba", NorthAmerica, "Havana", Point{23.11, -82.37}},
	{"ECU", "Ecuador", SouthAmerica, "Quito", Point{-0.18, -78.47}},
	{"BOL", "Bolivia", SouthAmerica, "La Paz", Point{-16.49, -68.12}},
	{"URY", "Uruguay", SouthAmerica, "Montevideo", Point{-34.90, -56.16}},
	{"PRY", "Paraguay", SouthAmerica, "Asuncion", Point{-25.26, -57.58}},
	{"VEN", "Venezuela", SouthAmerica, "Caracas", Point{10.48, -66.90}},
	{"PNG", "Papua New Guinea", Oceania, "Port Moresby", Point{-9.44, 147.18}},
	{"WSM", "Samoa", Oceania, "Apia", Point{-13.83, -171.77}},
}

// cities is the built-in city database for locations that are not a
// country's principal city: PGW sites, CDN POPs, DNS resolver sites, and
// the secondary Korean PGW cities from Section 4.3.2.
var cities = []City{
	{"Amsterdam", "NLD", Point{52.37, 4.90}},
	{"Ashburn", "USA", Point{39.04, -77.49}},
	{"Lille", "FRA", Point{50.63, 3.06}},
	{"Wattrelos", "FRA", Point{50.70, 3.22}},
	{"London", "GBR", Point{51.51, -0.13}},
	{"Dallas", "USA", Point{32.78, -96.80}},
	{"Fort Worth", "USA", Point{32.76, -97.33}},
	{"Tulsa", "USA", Point{36.15, -95.99}},
	{"Singapore", "SGP", Point{1.35, 103.82}},
	{"Seoul", "KOR", Point{37.57, 126.98}},
	{"Goyang", "KOR", Point{37.66, 126.83}},
	{"Cheonan", "KOR", Point{36.82, 127.16}},
	{"Dublin", "IRL", Point{53.35, -6.26}},
	{"Warsaw", "POL", Point{52.23, 21.01}},
	{"Paris", "FRA", Point{48.86, 2.35}},
	{"Frankfurt", "DEU", Point{50.11, 8.68}},
	{"Marseille", "FRA", Point{43.30, 5.37}},
	{"Milan", "ITA", Point{45.46, 9.19}},
	{"Madrid", "ESP", Point{40.42, -3.70}},
	{"Stockholm", "SWE", Point{59.33, 18.07}},
	{"Vienna", "AUT", Point{48.21, 16.37}},
	{"New Jersey", "USA", Point{40.06, -74.41}},
	{"Abu Dhabi", "ARE", Point{24.45, 54.38}},
	{"Bangkok", "THA", Point{13.76, 100.50}},
	{"Tokyo", "JPN", Point{35.68, 139.69}},
	{"Hong Kong", "CHN", Point{22.32, 114.17}},
	{"Mumbai", "IND", Point{19.08, 72.88}},
	{"Fujairah", "ARE", Point{25.13, 56.33}},
	{"Karachi", "PAK", Point{24.86, 67.01}},
	{"Doha", "QAT", Point{25.29, 51.53}},
	{"Jeddah", "SAU", Point{21.49, 39.19}},
	{"Riyadh", "SAU", Point{24.71, 46.68}},
	{"Tbilisi", "GEO", Point{41.72, 44.79}},
	{"Istanbul", "TUR", Point{41.01, 28.98}},
	{"Cairo", "EGY", Point{30.04, 31.24}},
	{"Nairobi", "KEN", Point{-1.29, 36.82}},
	{"Sydney", "AUS", Point{-33.87, 151.21}},
	{"Sao Paulo", "BRA", Point{-23.55, -46.63}},
	{"Miami", "USA", Point{25.76, -80.19}},
	{"Los Angeles", "USA", Point{34.05, -118.24}},
	{"Kuala Lumpur", "MYS", Point{3.14, 101.69}},
	{"Tashkent", "UZB", Point{41.30, 69.24}},
	{"Chisinau", "MDA", Point{47.01, 28.86}},
	{"Baku", "AZE", Point{40.41, 49.87}},
	{"Helsinki", "FIN", Point{60.17, 24.94}},
	{"Male", "MDV", Point{4.18, 73.51}},
	{"Rome", "ITA", Point{41.90, 12.50}},
	{"Berlin", "DEU", Point{52.52, 13.40}},
	{"Islamabad", "PAK", Point{33.68, 73.05}},
	{"Dubai", "ARE", Point{25.20, 55.27}},
	{"Beijing", "CHN", Point{39.90, 116.40}},
	{"New York", "USA", Point{40.71, -74.01}},
}

var (
	countryByISO3 = map[string]Country{}
	cityByName    = map[string]City{}
)

func init() {
	for _, c := range countries {
		if _, dup := countryByISO3[c.ISO3]; dup {
			panic("geo: duplicate country " + c.ISO3)
		}
		countryByISO3[c.ISO3] = c
	}
	for _, c := range cities {
		if _, dup := cityByName[c.Name]; dup {
			panic("geo: duplicate city " + c.Name)
		}
		cityByName[c.Name] = c
	}
}

// LookupCountry returns the country with the given ISO3 code.
func LookupCountry(iso3 string) (Country, error) {
	c, ok := countryByISO3[iso3]
	if !ok {
		return Country{}, fmt.Errorf("geo: unknown country %q", iso3)
	}
	return c, nil
}

// MustCountry is LookupCountry but panics on unknown codes. It is intended
// for static world construction where a missing code is a programming bug.
func MustCountry(iso3 string) Country {
	c, err := LookupCountry(iso3)
	if err != nil {
		panic(err)
	}
	return c
}

// LookupCity returns the city with the given name.
func LookupCity(name string) (City, error) {
	c, ok := cityByName[name]
	if !ok {
		return City{}, fmt.Errorf("geo: unknown city %q", name)
	}
	return c, nil
}

// MustCity is LookupCity but panics on unknown names.
func MustCity(name string) City {
	c, err := LookupCity(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Countries returns all known countries sorted by ISO3 code.
func Countries() []Country {
	out := make([]Country, len(countries))
	copy(out, countries)
	sort.Slice(out, func(i, j int) bool { return out[i].ISO3 < out[j].ISO3 })
	return out
}

// CountriesIn returns all known countries on the given continent,
// sorted by ISO3 code.
func CountriesIn(ct Continent) []Country {
	var out []Country
	for _, c := range Countries() {
		if c.Continent == ct {
			out = append(out, c)
		}
	}
	return out
}
