// Package geo provides geographic primitives for the roaming simulator:
// latitude/longitude points, great-circle distances, and a small database
// of countries and cities relevant to the Airalo measurement campaigns.
//
// Latency in the simulator is ultimately derived from physical distance,
// so every network element (SGW, PGW, CDN POP, DNS resolver, ...) carries
// a Point. Distances use the haversine formula on a spherical Earth,
// which is accurate to ~0.5% — far below the jitter of any real RTT.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusKm is the mean Earth radius used by the haversine formula.
const EarthRadiusKm = 6371.0

// Point is a geographic coordinate in decimal degrees.
// The zero value is the Gulf of Guinea (0,0), which is intentionally
// detectable: real elements should always carry explicit coordinates.
type Point struct {
	Lat float64 // degrees, positive north
	Lon float64 // degrees, positive east
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.4f, %.4f)", p.Lat, p.Lon)
}

// IsZero reports whether the point is the (suspicious) zero coordinate.
func (p Point) IsZero() bool { return p.Lat == 0 && p.Lon == 0 }

// Valid reports whether the point lies in the legal coordinate range.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180
}

func radians(deg float64) float64 { return deg * math.Pi / 180 }

// DistanceKm returns the great-circle distance between a and b in km.
func DistanceKm(a, b Point) float64 {
	if a == b {
		return 0
	}
	lat1, lon1 := radians(a.Lat), radians(a.Lon)
	lat2, lon2 := radians(b.Lat), radians(b.Lon)
	dLat := lat2 - lat1
	dLon := lon2 - lon1
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	// Clamp for numeric safety before Asin.
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// FiberKmPerMs is the approximate one-way propagation speed of light in
// optical fiber (≈ 2/3 c ≈ 200 km per millisecond).
const FiberKmPerMs = 200.0

// FiberRouteFactor inflates great-circle distance to account for real
// fiber paths not following geodesics (typical observed factor 1.5–2.5;
// we use a conservative middle value).
const FiberRouteFactor = 1.9

// PropagationDelayMs returns the modeled one-way propagation delay in
// milliseconds between two points over terrestrial/submarine fiber.
func PropagationDelayMs(a, b Point) float64 {
	return DistanceKm(a, b) * FiberRouteFactor / FiberKmPerMs
}

// Midpoint returns the midpoint of the great-circle segment between a and b.
// It is used to place intermediate routers on long-haul paths.
func Midpoint(a, b Point) Point {
	lat1, lon1 := radians(a.Lat), radians(a.Lon)
	lat2, lon2 := radians(b.Lat), radians(b.Lon)
	bx := math.Cos(lat2) * math.Cos(lon2-lon1)
	by := math.Cos(lat2) * math.Sin(lon2-lon1)
	lat3 := math.Atan2(math.Sin(lat1)+math.Sin(lat2),
		math.Sqrt((math.Cos(lat1)+bx)*(math.Cos(lat1)+bx)+by*by))
	lon3 := lon1 + math.Atan2(by, math.Cos(lat1)+bx)
	// Normalize longitude to [-180, 180).
	lonDeg := math.Mod(lon3*180/math.Pi+540, 360) - 180
	return Point{Lat: lat3 * 180 / math.Pi, Lon: lonDeg}
}

// Continent identifies a continent for economic aggregation (Figure 16).
type Continent string

// Continents used by the marketplace analysis.
const (
	Africa       Continent = "Africa"
	Asia         Continent = "Asia"
	Europe       Continent = "Europe"
	NorthAmerica Continent = "North America"
	SouthAmerica Continent = "South America"
	Oceania      Continent = "Oceania"
)

// Country describes one country in the simulator's world database.
type Country struct {
	ISO3      string    // ISO 3166-1 alpha-3, e.g. "PAK"
	Name      string    // human-readable name
	Continent Continent // for continent-level aggregation
	Capital   string    // principal measurement city
	Center    Point     // coordinates of the principal city
}

// City is a named location used for PGWs, POPs and volunteers.
type City struct {
	Name    string
	Country string // ISO3
	Loc     Point
}
