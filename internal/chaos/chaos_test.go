package chaos

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func countingServer(t *testing.T) (*httptest.Server, *struct {
	sync.Mutex
	bodies []string
}) {
	t.Helper()
	seen := &struct {
		sync.Mutex
		bodies []string
	}{}
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		seen.Lock()
		seen.bodies = append(seen.bodies, string(b))
		seen.Unlock()
		io.WriteString(w, `{"ok":true,"padding":"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"}`)
	}))
	t.Cleanup(hs.Close)
	return hs, seen
}

// roundTrips drives n sequential requests through a chaos transport and
// classifies each outcome.
func roundTrips(t *testing.T, inj *Injector, hs *httptest.Server, n int) (ok, errs, decodeFail int) {
	t.Helper()
	rt := inj.Transport("me-X", 0, hs.Client().Transport)
	for i := 0; i < n; i++ {
		req, err := http.NewRequest(http.MethodPost, hs.URL+"/v2/results", strings.NewReader(`{"n":1}`))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := rt.RoundTrip(req)
		if err != nil {
			errs++
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || len(body) == 0 {
			decodeFail++
			continue
		}
		ok++
	}
	return ok, errs, decodeFail
}

// TestTransportScheduleReplays pins the core determinism property: two
// injectors at the same seed produce identical fault schedules and
// identical per-request outcomes, request by request.
func TestTransportScheduleReplays(t *testing.T) {
	hs, _ := countingServer(t)
	cfg := Heavy()
	cfg.LatencyProb = 0 // keep the test fast; latency is timing-only anyway
	cfg.Crash = 0

	type outcome struct{ ok, errs, decodeFail int }
	var runs []outcome
	var traces []string
	for i := 0; i < 2; i++ {
		inj := NewInjector(42, cfg)
		ok, errs, decodeFail := roundTrips(t, inj, hs, 200)
		runs = append(runs, outcome{ok, errs, decodeFail})
		traces = append(traces, inj.TraceString())
	}
	if runs[0] != runs[1] {
		t.Errorf("outcomes differ across same-seed runs: %+v vs %+v", runs[0], runs[1])
	}
	if traces[0] != traces[1] {
		t.Errorf("fault traces differ across same-seed runs:\n%s\nvs\n%s", traces[0], traces[1])
	}
	if runs[0].errs == 0 || runs[0].decodeFail == 0 || runs[0].ok == 0 {
		t.Errorf("heavy config should produce a mix of outcomes, got %+v", runs[0])
	}
	// A different seed must yield a different schedule.
	other := NewInjector(43, cfg)
	roundTrips(t, other, hs, 200)
	if other.TraceString() == traces[0] {
		t.Error("different seeds produced identical fault schedules")
	}
}

// TestTransportDuplicateDelivery: a duplicated request reaches the
// server twice but the caller sees a single (second) response.
func TestTransportDuplicateDelivery(t *testing.T) {
	hs, seen := countingServer(t)
	cfg := Config{Duplicate: 1} // every request duplicated
	inj := NewInjector(1, cfg)
	ok, errs, decodeFail := roundTrips(t, inj, hs, 3)
	if ok != 3 || errs != 0 || decodeFail != 0 {
		t.Fatalf("outcomes = ok %d errs %d decode %d, want all ok", ok, errs, decodeFail)
	}
	seen.Lock()
	defer seen.Unlock()
	if len(seen.bodies) != 6 {
		t.Fatalf("server saw %d requests, want 6 (3 duplicated)", len(seen.bodies))
	}
	for _, b := range seen.bodies {
		if b != `{"n":1}` {
			t.Errorf("request body corrupted on resend: %q", b)
		}
	}
}

// TestTransportResetBeforeNeverReachesServer: reset-before faults must
// fail the request without any server-side effect.
func TestTransportResetBeforeNeverReachesServer(t *testing.T) {
	hs, seen := countingServer(t)
	inj := NewInjector(1, Config{ResetBefore: 1})
	_, errs, _ := roundTrips(t, inj, hs, 3)
	if errs != 3 {
		t.Fatalf("errs = %d, want 3", errs)
	}
	seen.Lock()
	defer seen.Unlock()
	if len(seen.bodies) != 0 {
		t.Fatalf("server saw %d requests, want 0", len(seen.bodies))
	}
}

// TestTransportResetAfterReachesServer: reset-after faults fail the
// request AFTER the server processed it — the half-open failure that
// forces idempotency.
func TestTransportResetAfterReachesServer(t *testing.T) {
	hs, seen := countingServer(t)
	inj := NewInjector(1, Config{ResetAfter: 1})
	_, errs, _ := roundTrips(t, inj, hs, 3)
	if errs != 3 {
		t.Fatalf("errs = %d, want 3", errs)
	}
	seen.Lock()
	defer seen.Unlock()
	if len(seen.bodies) != 3 {
		t.Fatalf("server saw %d requests, want 3", len(seen.bodies))
	}
}

// TestTransportTruncationFailsDecode: truncated bodies end in
// ErrUnexpectedEOF, never a silent short read.
func TestTransportTruncationFailsDecode(t *testing.T) {
	hs, _ := countingServer(t)
	inj := NewInjector(1, Config{Truncate: 1})
	rt := inj.Transport("me-X", 0, hs.Client().Transport)
	req, _ := http.NewRequest(http.MethodGet, hs.URL+"/v2/tasks/lease", nil)
	resp, err := rt.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	_, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("read err = %v, want ErrUnexpectedEOF", err)
	}
}

// TestMaybeCrashBudgetAndDeterminism: crash decisions replay for a
// given seed and never exceed the per-ME cap.
func TestMaybeCrashBudgetAndDeterminism(t *testing.T) {
	cfg := Config{Crash: 0.5, MaxCrashes: 2}
	draw := func() (crashes int, pattern []bool) {
		inj := NewInjector(77, cfg)
		for round := 0; round < 40; round++ {
			c := inj.MaybeCrash("me-A", 0, round)
			pattern = append(pattern, c)
			if c {
				crashes++
			}
		}
		return crashes, pattern
	}
	c1, p1 := draw()
	c2, p2 := draw()
	if c1 != c2 {
		t.Fatalf("crash counts differ: %d vs %d", c1, c2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("crash pattern diverges at round %d", i)
		}
	}
	if c1 > cfg.MaxCrashes {
		t.Errorf("crashes = %d exceeds cap %d", c1, cfg.MaxCrashes)
	}
	if c1 == 0 {
		t.Error("P=0.5 over 40 rounds crashed zero times; stream looks broken")
	}
}

// TestMiddlewareSparesUnmarkedTraffic: requests without the ME header
// (admin, operators) are never stormed, even at 100% storm rates.
func TestMiddlewareSparesUnmarkedTraffic(t *testing.T) {
	inj := NewInjector(1, Config{Err5xx: 1})
	var reached int
	h := inj.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reached++
		w.WriteHeader(http.StatusNoContent)
	}))
	// Unmarked request passes through.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/admin/schedule", nil))
	if rec.Code != http.StatusNoContent || reached != 1 {
		t.Fatalf("unmarked request: code %d reached %d", rec.Code, reached)
	}
	// Marked request storms with Retry-After, before the handler runs.
	req := httptest.NewRequest(http.MethodPost, "/v2/results", nil)
	req.Header.Set(MEHeader, "me-A")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable || reached != 1 {
		t.Fatalf("marked request: code %d reached %d", rec.Code, reached)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("storm response missing Retry-After")
	}
}

// TestLatencySpikeRespectsContext: a latency spike must not outlive the
// request's context (the straggler watchdog depends on this).
func TestLatencySpikeRespectsContext(t *testing.T) {
	hs, _ := countingServer(t)
	inj := NewInjector(1, Config{LatencyProb: 1, LatencyMin: time.Hour, LatencyMax: 2 * time.Hour})
	rt := inj.Transport("me-X", 0, hs.Client().Transport)
	req, _ := http.NewRequest(http.MethodGet, hs.URL+"/x", nil)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := rt.RoundTrip(req.WithContext(ctx))
	if err == nil {
		t.Fatal("spiked request returned without error despite cancelled context")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}
