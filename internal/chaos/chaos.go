// Package chaos is a seeded, deterministic fault-injection layer for
// the AmiGo fleet control plane. The paper's measurement campaigns ran
// over flaky real-world cellular links — MEs dropped off, uploads
// stalled mid-transfer, and the control plane had to tolerate all of it.
// chaos reproduces that hostility on the loopback testbed so the fleet
// layer can prove a stronger property than "it usually works": with
// retries, redelivery and idempotent uploads in place, a chaos run must
// ingest the *byte-identical* dataset a clean run does. Faults may cost
// round trips, never data.
//
// # Fault model
//
// Client side (an http.RoundTripper wrapped around each ME's transport):
//
//   - latency spikes: the request stalls for a bounded random duration
//   - connection reset before send: the request never reaches the server
//   - connection reset after send: the server processed the request but
//     the response is lost — the dangerous half-open failure that forces
//     idempotency on the server
//   - response truncation: the body is cut mid-stream, so decoding fails
//   - duplicate delivery: the request is transparently sent twice, as a
//     retrying middlebox would
//
// Server side (middleware in front of the control-server handler):
//
//   - 5xx storms: requests are rejected with 503 before processing
//   - 429 storms: requests are shed with 429 + Retry-After
//
// ME lifecycle (decided by the fleet driver via MaybeCrash): mid-campaign
// crash/restart — the ME process dies between task batches and is
// restarted from scratch, replaying its schedule from its original rng
// stream.
//
// # Determinism
//
// Every decision is drawn from a stateless labeled stream
// (rng.Stream(seed, label)) whose label encodes the ME name, its
// incarnation (restart count), the operation ("POST /v2/tasks/lease"),
// and the per-operation wire attempt. An ME issues its requests
// sequentially, so its label sequence — and therefore its fault
// schedule — is a pure function of the seed, independent of worker
// counts, GOMAXPROCS, or goroutine interleaving. Server-side storms key
// on the same identity (carried in an X-Chaos-ME request header the
// transport injects) with a per-(ME, op) counter, so they replay
// identically too. Events() returns the full schedule in canonical
// order; two runs at the same seed produce equal traces.
//
// The one escape hatch is the fleet driver's straggler watchdog: if it
// fires (wall-clock timeouts, off by default in tests), the extra
// incarnation changes the fault trace — but never the ingested dataset,
// because replay + dedup make restarts data-free.
package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"roamsim/internal/rng"
	"roamsim/internal/vclock"
)

// MEHeader carries the measurement endpoint's identity on chaos-wrapped
// requests so server-side middleware can key its fault streams per ME.
const MEHeader = "X-Chaos-ME"

// Config sets per-decision fault probabilities. The zero value injects
// nothing.
type Config struct {
	// ResetBefore is P(connection reset before the request is sent);
	// the server never sees the request.
	ResetBefore float64
	// ResetAfter is P(connection reset after the server replied); the
	// request took effect but the client sees a transport error.
	ResetAfter float64
	// Truncate is P(the response body is cut mid-stream) for responses
	// that carry one.
	Truncate float64
	// Duplicate is P(the request is delivered twice back to back).
	Duplicate float64
	// LatencyProb is P(a latency spike stalls the request) for a
	// duration uniform in [LatencyMin, LatencyMax].
	LatencyProb            float64
	LatencyMin, LatencyMax time.Duration
	// Err5xx is P(the server middleware rejects the request with 503
	// before processing it).
	Err5xx float64
	// Err429 is P(the server middleware sheds the request with 429 +
	// Retry-After before processing it).
	Err429 float64
	// Crash is P(the ME crashes after completing a task batch),
	// sampled once per batch round by the fleet driver.
	Crash float64
	// MaxCrashes caps injected crashes per ME (default 1 when Crash>0)
	// so campaigns always terminate.
	MaxCrashes int
	// ShardKill is P(a control-plane shard dies after accepting an
	// upload), sampled once per accepted upload by the sharded fleet
	// harness. A killed shard loses all in-memory state (registry,
	// queues, idempotency keys) and comes back as a fresh server wired
	// to its surviving WAL.
	ShardKill float64
	// MaxShardKills caps injected shard kills fleet-wide (default 1
	// when ShardKill>0) so campaigns always terminate.
	MaxShardKills int
	// CompactKill is P(a shard's process dies mid-WAL-compaction),
	// sampled at each crash point the compactor exposes (after the
	// rewritten segment is staged, and after it is renamed in but
	// before the sources are retired). A compact-killed shard loses its
	// in-memory state like a shard kill; recovery additionally has to
	// resolve the half-finished compaction artifacts on reopen.
	CompactKill float64
	// MaxCompactKills caps injected compaction kills fleet-wide
	// (default 1 when CompactKill>0) so campaigns always terminate.
	MaxCompactKills int
}

// Light is a mild preset: occasional resets, latency and storms, one
// crash allowed per ME.
func Light() Config {
	return Config{
		ResetBefore: 0.02, ResetAfter: 0.02, Truncate: 0.02, Duplicate: 0.03,
		LatencyProb: 0.05, LatencyMin: 200 * time.Microsecond, LatencyMax: 2 * time.Millisecond,
		Err5xx: 0.03, Err429: 0.02,
		Crash: 0.05, MaxCrashes: 1,
	}
}

// Heavy is a hostile preset: every fault kind at aggressive rates, two
// crashes allowed per ME.
func Heavy() Config {
	return Config{
		ResetBefore: 0.06, ResetAfter: 0.06, Truncate: 0.06, Duplicate: 0.08,
		LatencyProb: 0.12, LatencyMin: 200 * time.Microsecond, LatencyMax: 3 * time.Millisecond,
		Err5xx: 0.08, Err429: 0.05,
		Crash: 0.15, MaxCrashes: 2,
	}
}

func (c Config) maxCrashes() int {
	if c.MaxCrashes > 0 {
		return c.MaxCrashes
	}
	if c.Crash > 0 {
		return 1
	}
	return 0
}

func (c Config) maxShardKills() int {
	if c.MaxShardKills > 0 {
		return c.MaxShardKills
	}
	if c.ShardKill > 0 {
		return 1
	}
	return 0
}

func (c Config) maxCompactKills() int {
	if c.MaxCompactKills > 0 {
		return c.MaxCompactKills
	}
	if c.CompactKill > 0 {
		return 1
	}
	return 0
}

// Event is one injected fault. The trace of all events in canonical
// order is the campaign's fault schedule.
type Event struct {
	ME      string `json:"me"`
	Inc     int    `json:"inc"`     // ME incarnation (0 = first run)
	Op      string `json:"op"`      // "POST /v2/results", "crash", ...
	Attempt int    `json:"attempt"` // per-(ME, op) wire attempt / batch round
	Fault   string `json:"fault"`   // "reset-before", "truncate", "503", ...
}

func (e Event) String() string {
	return fmt.Sprintf("%s#%d %s attempt=%d %s", e.ME, e.Inc, e.Op, e.Attempt, e.Fault)
}

// Injector derives and records one campaign's fault schedule. One
// Injector serves every ME transport and the server middleware, so a
// single seed governs the whole run.
type Injector struct {
	seed int64
	cfg  Config

	mu         sync.Mutex
	events     []Event
	meSeq      map[string]int // per-ME append order, for canonical sorting
	crashes    map[string]int // injected crashes so far, per ME
	mwSeen     map[string]int // per-(ME, op) middleware attempt counters
	faults     map[string]int // injected faults so far, per kind
	shardKills   int          // injected shard kills so far, fleet-wide
	compactKills int          // injected compaction kills so far, fleet-wide
	clk          vclock.Clock // latency-spike time source (nil = wall)
}

// FaultKinds are the fault labels an Injector can record, in canonical
// order — the label set for per-kind fault metrics (see Counts).
var FaultKinds = []string{
	"latency", "reset-before", "reset-after", "duplicate", "truncate",
	"crash", "shard-kill", "compact-kill", "503", "429",
}

// NewInjector returns an Injector for the given seed and fault config.
func NewInjector(seed int64, cfg Config) *Injector {
	return &Injector{
		seed: seed, cfg: cfg,
		meSeq:   map[string]int{},
		crashes: map[string]int{},
		mwSeen:  map[string]int{},
		faults:  map[string]int{},
	}
}

// Seed returns the fault-schedule seed.
func (inj *Injector) Seed() int64 { return inj.seed }

// SetClock routes latency-spike stalls through c — the fleet driver
// injects its clock here so a virtual-time campaign jumps over spikes
// instead of really sleeping them. The spike durations and the fault
// schedule are pure functions of the seed either way.
func (inj *Injector) SetClock(c vclock.Clock) {
	inj.mu.Lock()
	inj.clk = c
	inj.mu.Unlock()
}

func (inj *Injector) clock() vclock.Clock {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.clk != nil {
		return inj.clk
	}
	return vclock.Wall
}

// Config returns the fault configuration.
func (inj *Injector) Config() Config { return inj.cfg }

func (inj *Injector) record(e Event) {
	inj.mu.Lock()
	inj.meSeq[e.ME]++
	inj.events = append(inj.events, e)
	inj.faults[e.Fault]++
	inj.mu.Unlock()
}

// Counts returns how many faults of each kind have been injected so
// far, keyed by the Event.Fault strings enumerated in FaultKinds.
func (inj *Injector) Counts() map[string]int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make(map[string]int, len(inj.faults))
	for k, v := range inj.faults {
		out[k] = v
	}
	return out
}

// Events returns the fault schedule in canonical order: by ME, then by
// the ME's own (sequential) event order. Because every decision is
// keyed per ME, two runs at the same seed return equal traces no matter
// how their goroutines interleaved.
func (inj *Injector) Events() []Event {
	inj.mu.Lock()
	out := append([]Event(nil), inj.events...)
	inj.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].ME < out[j].ME })
	return out
}

// TraceString renders the canonical fault schedule one event per line —
// what the determinism tests diff and what -chaos runs can log for
// replay debugging.
func (inj *Injector) TraceString() string {
	var b bytes.Buffer
	for _, e := range inj.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// MaybeCrash decides whether the ME crashes after batch round (its
// per-incarnation round counter). It draws from the stateless stream
// for (me, inc, round), enforces the per-ME crash cap, and records the
// event. The fleet driver calls this between task batches.
func (inj *Injector) MaybeCrash(me string, inc, round int) bool {
	if inj.cfg.Crash <= 0 {
		return false
	}
	inj.mu.Lock()
	budget := inj.crashes[me] < inj.cfg.maxCrashes()
	inj.mu.Unlock()
	if !budget {
		return false
	}
	src := rng.Stream(inj.seed, fmt.Sprintf("chaos/crash/%s/%d/%d", me, inc, round))
	if !src.Bool(inj.cfg.Crash) {
		return false
	}
	inj.mu.Lock()
	inj.crashes[me]++
	inj.mu.Unlock()
	inj.record(Event{ME: me, Inc: inc, Op: "crash", Attempt: round, Fault: "crash"})
	return true
}

// MaybeKillShard decides whether control-plane shard `shard` dies
// after accepting its upload-th result upload. Like every other fault
// it draws from a stateless labeled stream keyed on (shard, upload),
// so the decision for "shard s's Nth accepted upload" is a pure
// function of the seed. With one fleet worker the upload order itself
// is deterministic and the whole kill schedule replays exactly; with
// concurrent workers, WHICH ME's upload is the Nth depends on
// interleaving, so the kill lands at a varying campaign moment — the
// ingested dataset is invariant either way (that is the contract shard
// kills are tested against), only the fault trace moves. The
// fleet-wide kill budget keeps campaigns terminating.
func (inj *Injector) MaybeKillShard(shard, upload int) bool {
	if inj.cfg.ShardKill <= 0 {
		return false
	}
	// Reserve a budget slot before drawing: concurrent uploads must not
	// both pass the check and overshoot MaxShardKills. A declined draw
	// returns the reservation.
	inj.mu.Lock()
	if inj.shardKills >= inj.cfg.maxShardKills() {
		inj.mu.Unlock()
		return false
	}
	inj.shardKills++
	inj.mu.Unlock()
	src := rng.Stream(inj.seed, fmt.Sprintf("chaos/shardkill/%d/%d", shard, upload))
	if !src.Bool(inj.cfg.ShardKill) {
		inj.mu.Lock()
		inj.shardKills--
		inj.mu.Unlock()
		return false
	}
	inj.record(Event{ME: fmt.Sprintf("shard-%d", shard), Op: "shard-kill", Attempt: upload, Fault: "shard-kill"})
	return true
}

// MaybeKillCompaction decides whether control-plane shard `shard` dies
// at its n-th compaction crash point (the fleet numbers the crash
// points each compaction exposes with one fleet-wide per-shard
// counter). Like MaybeKillShard it reserves a budget slot before
// drawing from the stateless (shard, n) stream, so concurrent
// compactions cannot overshoot MaxCompactKills, and a declined draw
// returns the reservation.
func (inj *Injector) MaybeKillCompaction(shard, n int) bool {
	if inj.cfg.CompactKill <= 0 {
		return false
	}
	inj.mu.Lock()
	if inj.compactKills >= inj.cfg.maxCompactKills() {
		inj.mu.Unlock()
		return false
	}
	inj.compactKills++
	inj.mu.Unlock()
	src := rng.Stream(inj.seed, fmt.Sprintf("chaos/compactkill/%d/%d", shard, n))
	if !src.Bool(inj.cfg.CompactKill) {
		inj.mu.Lock()
		inj.compactKills--
		inj.mu.Unlock()
		return false
	}
	inj.record(Event{ME: fmt.Sprintf("shard-%d", shard), Op: "compact-kill", Attempt: n, Fault: "compact-kill"})
	return true
}

// Transport wraps base with client-side fault injection for one ME
// incarnation. The returned RoundTripper is NOT safe for concurrent
// use — an ME issues its requests sequentially, which is exactly what
// keeps its fault schedule deterministic.
func (inj *Injector) Transport(me string, inc int, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{inj: inj, me: me, inc: inc, base: base, attempts: map[string]int{}}
}

type transport struct {
	inj      *Injector
	me       string
	inc      int
	base     http.RoundTripper
	attempts map[string]int // per-op wire attempts this incarnation
}

// faultError is the transport-level error chaos injects; it satisfies
// net.Error-style temporariness only in the sense that callers are
// expected to retry.
type faultError struct{ msg string }

func (e *faultError) Error() string { return e.msg }

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	cfg := t.inj.cfg
	op := req.Method + " " + req.URL.Path
	t.attempts[op]++
	attempt := t.attempts[op]
	src := rng.Stream(t.inj.seed, fmt.Sprintf("chaos/%s/%d/%s/%d", t.me, t.inc, op, attempt))

	// Draw the whole decision vector up front in a fixed order so the
	// schedule for (me, inc, op, attempt) is a pure function of the seed.
	spike := src.Bool(cfg.LatencyProb)
	spikeFor := time.Duration(src.Uniform(float64(cfg.LatencyMin), float64(cfg.LatencyMax)))
	resetBefore := src.Bool(cfg.ResetBefore)
	duplicate := src.Bool(cfg.Duplicate)
	resetAfter := src.Bool(cfg.ResetAfter)
	truncate := src.Bool(cfg.Truncate)
	truncateAt := src.Float64()

	ev := func(fault string) {
		t.inj.record(Event{ME: t.me, Inc: t.inc, Op: op, Attempt: attempt, Fault: fault})
	}

	// Buffer the body so the request can be re-sent for duplicates.
	var body []byte
	if req.Body != nil {
		var err error
		//lint:allow bodyhygiene request bodies are built in-process by amigo.Endpoint (tiny JSON), not read off the network; bounding here would corrupt the replayed duplicate
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}
	send := func() (*http.Response, error) {
		r := req.Clone(req.Context())
		if body != nil {
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
		}
		r.Header.Set(MEHeader, t.me)
		return t.base.RoundTrip(r)
	}

	if spike && spikeFor > 0 {
		ev("latency")
		// The stall runs on the injected clock: a real-clock campaign
		// truly pauses the transport; a virtual-clock campaign parks and
		// lets quiescence jump the spike.
		if err := vclock.SleepCtx(t.inj.clock(), req.Context(), spikeFor); err != nil {
			return nil, err
		}
	}
	if resetBefore {
		ev("reset-before")
		return nil, &faultError{fmt.Sprintf("chaos: connection reset before %s", op)}
	}
	resp, err := send()
	if err != nil {
		return nil, err
	}
	if duplicate {
		ev("duplicate")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp, err = send(); err != nil {
			return nil, err
		}
	}
	if resetAfter {
		ev("reset-after")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, &faultError{fmt.Sprintf("chaos: connection reset awaiting response to %s", op)}
	}
	if truncate && resp.StatusCode == http.StatusOK {
		//lint:allow bodyhygiene the truncation fault must capture the exact byte stream so the cut offset is a pure function of the seed; a bound would move the cut on large bodies
		full, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if len(full) > 0 {
			ev("truncate")
			cut := int(truncateAt * float64(len(full))) // strictly < len(full)
			resp.Body = &truncatedBody{data: full[:cut]}
			resp.ContentLength = int64(cut)
		} else {
			resp.Body = io.NopCloser(bytes.NewReader(full))
		}
	}
	return resp, nil
}

// truncatedBody yields its bytes and then fails with ErrUnexpectedEOF,
// like a connection torn down mid-body.
type truncatedBody struct {
	data []byte
	off  int
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.ErrUnexpectedEOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

func (b *truncatedBody) Close() error { return nil }

// Middleware injects server-side 5xx/429 storms in front of next.
// Requests without the MEHeader (operator/admin traffic, or clients not
// under chaos) pass through untouched. Storm decisions key on the
// request's (ME, op) and a per-pair counter, so — like the client-side
// faults — the storm schedule is per-ME deterministic and replays
// exactly for a given seed. Storms fire before next sees the request,
// so a stormed request never has server-side effects.
func (inj *Injector) Middleware(next http.Handler) http.Handler {
	cfg := inj.cfg
	if cfg.Err5xx <= 0 && cfg.Err429 <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		me := r.Header.Get(MEHeader)
		if me == "" {
			next.ServeHTTP(w, r)
			return
		}
		op := r.Method + " " + r.URL.Path
		key := me + "|" + op
		inj.mu.Lock()
		inj.mwSeen[key]++
		attempt := inj.mwSeen[key]
		inj.mu.Unlock()
		src := rng.Stream(inj.seed, fmt.Sprintf("chaos/mw/%s/%s/%d", me, op, attempt))
		storm5xx := src.Bool(cfg.Err5xx)
		storm429 := src.Bool(cfg.Err429)
		switch {
		case storm5xx:
			inj.record(Event{ME: me, Op: "mw " + op, Attempt: attempt, Fault: "503"})
			w.Header().Set("Retry-After", "0")
			http.Error(w, "chaos: injected 503 storm", http.StatusServiceUnavailable)
		case storm429:
			inj.record(Event{ME: me, Op: "mw " + op, Attempt: attempt, Fault: "429"})
			w.Header().Set("Retry-After", "0")
			http.Error(w, "chaos: injected 429 storm", http.StatusTooManyRequests)
		default:
			next.ServeHTTP(w, r)
		}
	})
}
