// Package vmnocore simulates the visited-MNO core telemetry the paper
// obtained from a cooperating UK operator (under NDA): per-subscriber
// daily data and signalling volumes for three hidden populations —
// the v-MNO's own native users, ordinary inbound roamers from Play
// Poland, and Airalo users riding Play IMSIs.
//
// The substitution preserves Figure 5's finding structure: Airalo users
// behave like natives in data volume (they are tourists using the eSIM
// as their primary connection), ordinary Play roamers look different
// (their traffic is split across several UK v-MNOs), and Airalo
// signalling runs slightly hotter than native (roaming re-registrations),
// which the paper flags as a cost to the v-MNO.
//
// The analysis pipeline on top (IMSI mining, partitioning) is the real
// methodology from internal/core, applied to this synthetic population.
package vmnocore

import (
	"fmt"

	"roamsim/internal/mno"
	"roamsim/internal/rng"
)

// Group is the hidden ground-truth population of a subscriber.
type Group string

// Populations of the Figure 5 analysis.
const (
	GroupNative     Group = "native"      // v-MNO's own users
	GroupPlayRoamer Group = "play-roamer" // ordinary inbound Play roamers
	GroupAiralo     Group = "airalo"      // Airalo users on Play IMSIs
)

// Subscriber is one line in the core's subscriber table.
type Subscriber struct {
	IMSI mno.IMSI
	IMEI string
	// TrueGroup is ground truth, available to evaluation code only —
	// the mining pipeline must not read it.
	TrueGroup Group
}

// Usage is one day of a subscriber's activity as the core sees it.
type Usage struct {
	DataMB        float64
	SignallingMsg float64
}

// Profile holds the generative parameters of one population.
type Profile struct {
	DataMedianMB float64
	DataSigma    float64
	SigMedianMsg float64
	SigSigma     float64
}

// DefaultProfiles reflect the qualitative relationships of Figure 5.
var DefaultProfiles = map[Group]Profile{
	GroupNative:     {DataMedianMB: 350, DataSigma: 0.9, SigMedianMsg: 180, SigSigma: 0.5},
	GroupAiralo:     {DataMedianMB: 340, DataSigma: 0.9, SigMedianMsg: 215, SigSigma: 0.5},
	GroupPlayRoamer: {DataMedianMB: 120, DataSigma: 1.2, SigMedianMsg: 260, SigSigma: 0.7},
}

// Simulator generates the subscriber population and its usage.
type Simulator struct {
	vMNO        *mno.Operator
	play        *mno.Operator
	airaloRange mno.IMSIRange
	profiles    map[Group]Profile
	src         *rng.Source
	nextIMEI    int
}

// New returns a simulator for the given v-MNO, the Play b-MNO, and the
// IMSI range Play leases to Airalo.
func New(vMNO, play *mno.Operator, airaloRange mno.IMSIRange, src *rng.Source) *Simulator {
	return &Simulator{
		vMNO: vMNO, play: play, airaloRange: airaloRange,
		profiles: DefaultProfiles, src: src,
	}
}

// SetProfile overrides a population profile (for ablations).
func (s *Simulator) SetProfile(g Group, p Profile) { s.profiles[g] = p }

func (s *Simulator) newIMEI() string {
	s.nextIMEI++
	return fmt.Sprintf("35%013d", s.nextIMEI)
}

// NewSubscriber mints a subscriber of the given group.
func (s *Simulator) NewSubscriber(g Group) Subscriber {
	sub := Subscriber{IMEI: s.newIMEI(), TrueGroup: g}
	switch g {
	case GroupNative:
		sub.IMSI = s.vMNO.NewIMSI(s.vMNO.OwnRange())
	case GroupPlayRoamer:
		// Ordinary Play customers: anywhere in Play's space EXCEPT the
		// leased Airalo block. Resample on collision.
		for {
			imsi := s.play.NewIMSI(s.play.OwnRange())
			if !s.airaloRange.Contains(imsi) {
				sub.IMSI = imsi
				break
			}
		}
	case GroupAiralo:
		sub.IMSI = s.play.NewIMSI(s.airaloRange)
	default:
		panic(fmt.Sprintf("vmnocore: unknown group %q", g))
	}
	return sub
}

// Population generates a mixed subscriber population.
func (s *Simulator) Population(native, playRoamers, airalo int) []Subscriber {
	out := make([]Subscriber, 0, native+playRoamers+airalo)
	for i := 0; i < native; i++ {
		out = append(out, s.NewSubscriber(GroupNative))
	}
	for i := 0; i < playRoamers; i++ {
		out = append(out, s.NewSubscriber(GroupPlayRoamer))
	}
	for i := 0; i < airalo; i++ {
		out = append(out, s.NewSubscriber(GroupAiralo))
	}
	rng.Shuffle(s.src, out)
	return out
}

// SeedDevices deploys n devices with Airalo eSIMs whose IMEIs the
// experimenter controls — the paper's 10 UK devices. The returned
// subscribers also appear in the core, so LookupIMSIByIMEI can find them.
func (s *Simulator) SeedDevices(n int) []Subscriber {
	out := make([]Subscriber, n)
	for i := range out {
		out[i] = s.NewSubscriber(GroupAiralo)
	}
	return out
}

// LookupIMSIByIMEI is the core query the paper ran: "verify from the
// v-MNO core the IMSIs associated with IMEI of our deployed devices".
func LookupIMSIByIMEI(population []Subscriber, imei string) (mno.IMSI, bool) {
	for _, sub := range population {
		if sub.IMEI == imei {
			return sub.IMSI, true
		}
	}
	return "", false
}

// DailyUsage draws one day of activity for a subscriber.
func (s *Simulator) DailyUsage(sub Subscriber) Usage {
	p, ok := s.profiles[sub.TrueGroup]
	if !ok {
		panic(fmt.Sprintf("vmnocore: no profile for %q", sub.TrueGroup))
	}
	return Usage{
		DataMB:        s.src.LogNormalMeanMedian(p.DataMedianMB, p.DataSigma),
		SignallingMsg: s.src.LogNormalMeanMedian(p.SigMedianMsg, p.SigSigma),
	}
}

// MonthObservation is the per-subscriber aggregate for the analysis
// month (April 2024 in the paper).
type MonthObservation struct {
	Sub           Subscriber
	DataMB        float64
	SignallingMsg float64
}

// ObserveMonth aggregates days of usage for every subscriber.
func (s *Simulator) ObserveMonth(population []Subscriber, days int) []MonthObservation {
	out := make([]MonthObservation, len(population))
	for i, sub := range population {
		var data, sig float64
		for d := 0; d < days; d++ {
			u := s.DailyUsage(sub)
			data += u.DataMB
			sig += u.SignallingMsg
		}
		out[i] = MonthObservation{Sub: sub, DataMB: data, SignallingMsg: sig}
	}
	return out
}
