package vmnocore

import (
	"testing"

	"roamsim/internal/core"
	"roamsim/internal/mno"
	"roamsim/internal/rng"
	"roamsim/internal/stats"
)

func newSim(t *testing.T) (*Simulator, *mno.Operator, mno.IMSIRange) {
	t.Helper()
	vmno := &mno.Operator{Name: "UK-MNO", PLMN: mno.PLMN{MCC: "234", MNC: "15"}, Country: "GBR"}
	play := &mno.Operator{Name: "Play", PLMN: mno.PLMN{MCC: "260", MNC: "06"}, Country: "POL"}
	airaloRange := play.MustLeaseRange("731", "airalo")
	return New(vmno, play, airaloRange, rng.New(7)), play, airaloRange
}

func TestSubscriberIdentities(t *testing.T) {
	sim, _, airaloRange := newSim(t)
	n := sim.NewSubscriber(GroupNative)
	if n.IMSI.PLMNOf(2).String() != "234-15" {
		t.Errorf("native IMSI PLMN = %s", n.IMSI.PLMNOf(2))
	}
	a := sim.NewSubscriber(GroupAiralo)
	if !airaloRange.Contains(a.IMSI) {
		t.Error("airalo subscriber outside leased range")
	}
	r := sim.NewSubscriber(GroupPlayRoamer)
	if airaloRange.Contains(r.IMSI) {
		t.Error("ordinary Play roamer inside leased range")
	}
	if r.IMSI.PLMNOf(2).String() != "260-06" {
		t.Errorf("roamer PLMN = %s", r.IMSI.PLMNOf(2))
	}
	if n.IMEI == a.IMEI || len(n.IMEI) != 15 {
		t.Errorf("IMEIs must be unique 15-digit strings: %s %s", n.IMEI, a.IMEI)
	}
}

func TestPopulationComposition(t *testing.T) {
	sim, _, _ := newSim(t)
	pop := sim.Population(100, 50, 25)
	if len(pop) != 175 {
		t.Fatalf("population size = %d", len(pop))
	}
	counts := map[Group]int{}
	for _, s := range pop {
		counts[s.TrueGroup]++
	}
	if counts[GroupNative] != 100 || counts[GroupPlayRoamer] != 50 || counts[GroupAiralo] != 25 {
		t.Errorf("composition = %v", counts)
	}
}

func TestLookupIMSIByIMEI(t *testing.T) {
	sim, _, _ := newSim(t)
	pop := sim.Population(10, 10, 10)
	target := pop[7]
	imsi, ok := LookupIMSIByIMEI(pop, target.IMEI)
	if !ok || imsi != target.IMSI {
		t.Errorf("lookup failed: ok=%v %s vs %s", ok, imsi, target.IMSI)
	}
	if _, ok := LookupIMSIByIMEI(pop, "nope"); ok {
		t.Error("unknown IMEI should miss")
	}
}

func TestUsageDistributionsMatchFigure5(t *testing.T) {
	sim, _, _ := newSim(t)
	const n = 400
	groups := map[Group][]float64{}
	sigGroups := map[Group][]float64{}
	for _, g := range []Group{GroupNative, GroupPlayRoamer, GroupAiralo} {
		for i := 0; i < n; i++ {
			u := sim.DailyUsage(sim.NewSubscriber(g))
			groups[g] = append(groups[g], u.DataMB)
			sigGroups[g] = append(sigGroups[g], u.SignallingMsg)
		}
	}
	natData := stats.Median(groups[GroupNative])
	airData := stats.Median(groups[GroupAiralo])
	playData := stats.Median(groups[GroupPlayRoamer])
	// Airalo ≈ native (within 25%), Play roamers clearly lower.
	if airData < natData*0.75 || airData > natData*1.25 {
		t.Errorf("airalo data median %f should track native %f", airData, natData)
	}
	if playData > natData*0.6 {
		t.Errorf("play roamer data median %f should differ from native %f", playData, natData)
	}
	// Signalling: Airalo slightly higher than native.
	natSig := stats.Median(sigGroups[GroupNative])
	airSig := stats.Median(sigGroups[GroupAiralo])
	if airSig <= natSig {
		t.Errorf("airalo signalling %f should exceed native %f", airSig, natSig)
	}
}

func TestObserveMonthAggregates(t *testing.T) {
	sim, _, _ := newSim(t)
	pop := sim.Population(5, 5, 5)
	obs := sim.ObserveMonth(pop, 30)
	if len(obs) != len(pop) {
		t.Fatal("observation count mismatch")
	}
	for _, o := range obs {
		if o.DataMB <= 0 || o.SignallingMsg <= 0 {
			t.Fatal("monthly aggregates must be positive")
		}
		// 30 days at medians of hundreds: totals should be thousands.
		if o.DataMB < 100 {
			t.Errorf("implausibly low monthly data: %f MB", o.DataMB)
		}
	}
}

// TestEndToEndFigure5Pipeline runs the full methodology: seed devices,
// look up their IMSIs by IMEI, mine ranges, partition the population, and
// check that the inferred Airalo group's usage matches the ground truth
// group's.
func TestEndToEndFigure5Pipeline(t *testing.T) {
	sim, _, _ := newSim(t)
	pop := sim.Population(800, 400, 200)
	seeded := sim.SeedDevices(10)
	all := append(append([]Subscriber(nil), pop...), seeded...)

	// Analyst view: look up seeded IMSIs by IMEI, never touch TrueGroup.
	var seedIMSIs []mno.IMSI
	for _, dev := range seeded {
		imsi, ok := LookupIMSIByIMEI(all, dev.IMEI)
		if !ok {
			t.Fatal("seeded device missing from core")
		}
		seedIMSIs = append(seedIMSIs, imsi)
	}
	rs, err := core.MineIMSIRanges(seedIMSIs, core.MineOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Partition only the Play-PLMN inbound roamers (the v-MNO can already
	// exclude its own natives by PLMN).
	var inbound []Subscriber
	for _, s := range all {
		if s.IMSI.PLMNOf(2).String() == "260-06" {
			inbound = append(inbound, s)
		}
	}
	var tp, fp, fn int
	for _, s := range inbound {
		inferred := rs.Match(s.IMSI)
		truth := s.TrueGroup == GroupAiralo
		switch {
		case inferred && truth:
			tp++
		case inferred && !truth:
			fp++
		case !inferred && truth:
			fn++
		}
	}
	if fn > 0 {
		t.Errorf("mining missed %d true Airalo users", fn)
	}
	precision := float64(tp) / float64(tp+fp)
	if precision < 0.8 {
		t.Errorf("precision = %f, want >= 0.8", precision)
	}
}
