// Package netsim implements the network substrate for the reproduction:
// a geo-aware graph of nodes and links over which the measurement tools
// (traceroute, speedtest, CDN fetch, DNS probe) are evaluated.
//
// The model is deliberately at the level the paper measures:
//
//   - every link carries a one-way delay derived from great-circle
//     distance over fiber, plus an optional peering penalty capturing
//     interconnection-agreement quality (Section 4.3's takeaway is that
//     such penalties, not distance, often dominate);
//   - every link carries a bandwidth; path throughput is the bottleneck
//     further constrained by policy caps at the measurement layer;
//   - nodes answer (or don't answer) ICMP TTL-exceeded probes with a
//     configurable probability, reproducing the silent CG-NATs the paper
//     observes in Germany and Qatar;
//   - nodes expose either a private (RFC 1918 / CGN) or a public address,
//     which is exactly the signal the tomography demarcation step uses.
//
// Routing is shortest-delay (Dijkstra) with deterministic tie-breaking,
// computed on demand and cached; see routing.go.
//
// # Build phase vs. query phase
//
// A Network has two phases. During the build phase a single goroutine
// adds nodes and links (AddNode, Connect, SetTransitAS). Calling Freeze
// ends the build phase; from then on any topology mutation panics, and
// every query (Route, RTTms, Node, Traceroute, ...) is safe for
// unbounded concurrent use. Queries use read locks plus a sharded route
// cache, so concurrent readers do not serialize on a single mutex.
// SetLoadModel is the one deliberate exception: the load model is a
// measurement-time confounder, not topology, and may be swapped after
// Freeze (it has its own lock).
package netsim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"roamsim/internal/geo"
	"roamsim/internal/ipaddr"
	"roamsim/internal/ipreg"
)

// NodeID identifies a node within one Network.
type NodeID int

// NodeKind labels the functional role of a node. Kinds matter to the
// measurement layer (e.g. a traceroute starts at a UE and the GTP segment
// ends at a PGW) but not to routing.
type NodeKind string

// Node kinds.
const (
	KindUE       NodeKind = "ue"       // user equipment (measurement device)
	KindBaseSta  NodeKind = "bs"       // base station / eNodeB
	KindSGW      NodeKind = "sgw"      // serving gateway (visited network)
	KindIPXRelay NodeKind = "ipx"      // IPX backbone relay
	KindPGW      NodeKind = "pgw"      // packet data network gateway
	KindCGNAT    NodeKind = "cgnat"    // carrier-grade NAT
	KindRouter   NodeKind = "router"   // generic public-internet router
	KindServer   NodeKind = "server"   // service endpoint (SP edge, CDN POP, Ookla)
	KindResolver NodeKind = "resolver" // DNS resolver
)

// Node is one element of the simulated topology.
type Node struct {
	ID   NodeID
	Name string
	Kind NodeKind
	Loc  geo.Point
	// Addr is the address the node sources ICMP replies from. Private
	// addresses mark the pre-breakout segment.
	Addr ipaddr.Addr
	// ASN is the AS that operates the node (0 when anonymous/private).
	ASN ipreg.ASN
	// ICMPReplyProb is the probability the node answers a TTL-exceeded
	// probe. 0 models CG-NATs or routers that drop ICMP.
	ICMPReplyProb float64
	// ProcDelayMs is per-packet processing delay added at this hop.
	ProcDelayMs float64
}

// Link is an undirected edge between two nodes.
type Link struct {
	A, B NodeID
	// DelayMs is the one-way baseline delay (propagation + serialization).
	DelayMs float64
	// PeeringPenaltyMs is additional one-way delay modeling the quality of
	// the interconnection agreement on this edge.
	PeeringPenaltyMs float64
	// BandwidthMbps is the link capacity.
	BandwidthMbps float64
	// LossProb is the per-packet loss probability on this edge.
	LossProb float64
	// JitterFrac scales the random perturbation applied to this link's
	// delay in each measurement (default 0.08 if zero).
	JitterFrac float64
}

// TotalDelayMs returns the effective one-way delay used for routing.
func (l Link) TotalDelayMs() float64 { return l.DelayMs + l.PeeringPenaltyMs }

// Network is a two-phase topology: mutable while building, immutable
// (and safe for unbounded concurrent queries) after Freeze. See the
// package doc for the phase contract.
type Network struct {
	mu     sync.RWMutex
	frozen atomic.Bool
	nodes  []Node
	adj    [][]edgeRef // indexed by NodeID

	// transitAS marks ASes allowed to carry traffic between two other
	// networks. All other (stub) ASes — content providers, PGW hosts —
	// may originate or sink traffic but not be crossed, the "valley-free"
	// constraint real BGP policy enforces.
	transitAS map[ipreg.ASN]bool

	// load is the optional utilization model (see SetLoadModel). It has
	// its own lock because it may be swapped after Freeze and is read on
	// every RTT/throughput sample.
	loadMu sync.RWMutex
	load   LoadModel

	routes routeTable
}

type edgeRef struct {
	to   NodeID
	link Link
}

// New returns an empty network in the build phase.
func New() *Network {
	n := &Network{transitAS: make(map[ipreg.ASN]bool)}
	n.routes.init()
	return n
}

// Freeze ends the build phase. After Freeze every topology mutation
// (AddNode, Connect, SetTransitAS) panics, and all queries are safe for
// concurrent use without external synchronization. Freeze is idempotent.
func (n *Network) Freeze() { n.frozen.Store(true) }

// Frozen reports whether the build phase has ended.
func (n *Network) Frozen() bool { return n.frozen.Load() }

func (n *Network) mutable(op string) {
	if n.frozen.Load() {
		panic("netsim: " + op + " after Freeze")
	}
}

// SetTransitAS marks an AS as transit-capable. Unlisted non-zero ASes
// are stubs; nodes with ASN 0 (private infrastructure) are unrestricted.
// Build phase only.
func (n *Network) SetTransitAS(asn ipreg.ASN) {
	n.mutable("SetTransitAS")
	n.mu.Lock()
	defer n.mu.Unlock()
	n.transitAS[asn] = true
	n.routes.invalidate()
}

// AddNode inserts a node and returns its ID. The ID field of the argument
// is ignored and assigned by the network. Nodes default to answering ICMP
// (probability 1) and a 0.15 ms processing delay if unset. Build phase only.
func (n *Network) AddNode(node Node) NodeID {
	n.mutable("AddNode")
	n.mu.Lock()
	defer n.mu.Unlock()
	node.ID = NodeID(len(n.nodes))
	if node.ICMPReplyProb == 0 {
		node.ICMPReplyProb = 1
	} else if node.ICMPReplyProb < 0 {
		node.ICMPReplyProb = 0 // explicit "never replies"
	}
	if node.ProcDelayMs == 0 {
		node.ProcDelayMs = 0.15
	}
	n.nodes = append(n.nodes, node)
	n.adj = append(n.adj, nil)
	return node.ID
}

// Node returns the node with the given ID.
func (n *Network) Node(id NodeID) Node {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if int(id) < 0 || int(id) >= len(n.nodes) {
		panic(fmt.Sprintf("netsim: unknown node %d", id))
	}
	return n.nodes[id]
}

// NumNodes returns the number of nodes.
func (n *Network) NumNodes() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.nodes)
}

// Connect adds an undirected link. If link.DelayMs is zero it is derived
// from the great-circle distance between the endpoints (plus a small
// last-metre floor so co-located nodes still cost something). If
// BandwidthMbps is zero a 10 Gbps default is used. Build phase only.
func (n *Network) Connect(a, b NodeID, link Link) {
	n.mutable("Connect")
	n.mu.Lock()
	defer n.mu.Unlock()
	if a == b {
		panic("netsim: self-link")
	}
	link.A, link.B = a, b
	if link.DelayMs == 0 {
		link.DelayMs = geo.PropagationDelayMs(n.nodes[a].Loc, n.nodes[b].Loc)
		if link.DelayMs < 0.05 {
			link.DelayMs = 0.05
		}
	}
	if link.BandwidthMbps == 0 {
		link.BandwidthMbps = 10000
	}
	if link.JitterFrac == 0 {
		link.JitterFrac = 0.08
	}
	n.adj[a] = append(n.adj[a], edgeRef{to: b, link: link})
	n.adj[b] = append(n.adj[b], edgeRef{to: a, link: link})
	// Topology changed: routes computed so far may be stale.
	n.routes.invalidate()
}

// Degree returns the number of links attached to a node.
func (n *Network) Degree(id NodeID) int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if int(id) < 0 || int(id) >= len(n.adj) {
		return 0
	}
	return len(n.adj[id])
}

// NodesByKind returns the IDs of all nodes of the given kind, sorted.
func (n *Network) NodesByKind(kind NodeKind) []NodeID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var out []NodeID
	for _, node := range n.nodes {
		if node.Kind == kind {
			out = append(out, node.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FindNode returns the first node with the given name.
func (n *Network) FindNode(name string) (Node, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	for _, node := range n.nodes {
		if node.Name == name {
			return node, true
		}
	}
	return Node{}, false
}
