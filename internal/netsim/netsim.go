// Package netsim implements the network substrate for the reproduction:
// a geo-aware graph of nodes and links over which the measurement tools
// (traceroute, speedtest, CDN fetch, DNS probe) are evaluated.
//
// The model is deliberately at the level the paper measures:
//
//   - every link carries a one-way delay derived from great-circle
//     distance over fiber, plus an optional peering penalty capturing
//     interconnection-agreement quality (Section 4.3's takeaway is that
//     such penalties, not distance, often dominate);
//   - every link carries a bandwidth; path throughput is the bottleneck
//     further constrained by policy caps at the measurement layer;
//   - nodes answer (or don't answer) ICMP TTL-exceeded probes with a
//     configurable probability, reproducing the silent CG-NATs the paper
//     observes in Germany and Qatar;
//   - nodes expose either a private (RFC 1918 / CGN) or a public address,
//     which is exactly the signal the tomography demarcation step uses.
//
// Routing is shortest-delay (Dijkstra) with deterministic tie-breaking,
// computed on demand and cached.
package netsim

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"roamsim/internal/geo"
	"roamsim/internal/ipaddr"
	"roamsim/internal/ipreg"
	"roamsim/internal/rng"
)

// NodeID identifies a node within one Network.
type NodeID int

// NodeKind labels the functional role of a node. Kinds matter to the
// measurement layer (e.g. a traceroute starts at a UE and the GTP segment
// ends at a PGW) but not to routing.
type NodeKind string

// Node kinds.
const (
	KindUE       NodeKind = "ue"       // user equipment (measurement device)
	KindBaseSta  NodeKind = "bs"       // base station / eNodeB
	KindSGW      NodeKind = "sgw"      // serving gateway (visited network)
	KindIPXRelay NodeKind = "ipx"      // IPX backbone relay
	KindPGW      NodeKind = "pgw"      // packet data network gateway
	KindCGNAT    NodeKind = "cgnat"    // carrier-grade NAT
	KindRouter   NodeKind = "router"   // generic public-internet router
	KindServer   NodeKind = "server"   // service endpoint (SP edge, CDN POP, Ookla)
	KindResolver NodeKind = "resolver" // DNS resolver
)

// Node is one element of the simulated topology.
type Node struct {
	ID   NodeID
	Name string
	Kind NodeKind
	Loc  geo.Point
	// Addr is the address the node sources ICMP replies from. Private
	// addresses mark the pre-breakout segment.
	Addr ipaddr.Addr
	// ASN is the AS that operates the node (0 when anonymous/private).
	ASN ipreg.ASN
	// ICMPReplyProb is the probability the node answers a TTL-exceeded
	// probe. 0 models CG-NATs or routers that drop ICMP.
	ICMPReplyProb float64
	// ProcDelayMs is per-packet processing delay added at this hop.
	ProcDelayMs float64
}

// Link is an undirected edge between two nodes.
type Link struct {
	A, B NodeID
	// DelayMs is the one-way baseline delay (propagation + serialization).
	DelayMs float64
	// PeeringPenaltyMs is additional one-way delay modeling the quality of
	// the interconnection agreement on this edge.
	PeeringPenaltyMs float64
	// BandwidthMbps is the link capacity.
	BandwidthMbps float64
	// LossProb is the per-packet loss probability on this edge.
	LossProb float64
	// JitterFrac scales the random perturbation applied to this link's
	// delay in each measurement (default 0.08 if zero).
	JitterFrac float64
}

// TotalDelayMs returns the effective one-way delay used for routing.
func (l Link) TotalDelayMs() float64 { return l.DelayMs + l.PeeringPenaltyMs }

// Network is a mutable topology. Construction is not concurrency-safe;
// evaluation (routing, measurements) is safe for concurrent readers once
// construction has finished.
type Network struct {
	mu    sync.Mutex
	nodes []Node
	adj   map[NodeID][]edgeRef

	// transitAS marks ASes allowed to carry traffic between two other
	// networks. All other (stub) ASes — content providers, PGW hosts —
	// may originate or sink traffic but not be crossed, the "valley-free"
	// constraint real BGP policy enforces.
	transitAS map[ipreg.ASN]bool

	// load is the optional utilization model (see SetLoadModel).
	load LoadModel

	routeCache map[[2]NodeID]*Path
}

// SetTransitAS marks an AS as transit-capable. Unlisted non-zero ASes
// are stubs; nodes with ASN 0 (private infrastructure) are unrestricted.
func (n *Network) SetTransitAS(asn ipreg.ASN) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.transitAS[asn] = true
	n.routeCache = make(map[[2]NodeID]*Path)
}

type edgeRef struct {
	to   NodeID
	link Link
}

// New returns an empty network.
func New() *Network {
	return &Network{
		adj:        make(map[NodeID][]edgeRef),
		transitAS:  make(map[ipreg.ASN]bool),
		routeCache: make(map[[2]NodeID]*Path),
	}
}

// AddNode inserts a node and returns its ID. The ID field of the argument
// is ignored and assigned by the network. Nodes default to answering ICMP
// (probability 1) and a 0.15 ms processing delay if unset.
func (n *Network) AddNode(node Node) NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	node.ID = NodeID(len(n.nodes))
	if node.ICMPReplyProb == 0 {
		node.ICMPReplyProb = 1
	} else if node.ICMPReplyProb < 0 {
		node.ICMPReplyProb = 0 // explicit "never replies"
	}
	if node.ProcDelayMs == 0 {
		node.ProcDelayMs = 0.15
	}
	n.nodes = append(n.nodes, node)
	return node.ID
}

// Node returns the node with the given ID.
func (n *Network) Node(id NodeID) Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	if int(id) < 0 || int(id) >= len(n.nodes) {
		panic(fmt.Sprintf("netsim: unknown node %d", id))
	}
	return n.nodes[id]
}

// NumNodes returns the number of nodes.
func (n *Network) NumNodes() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.nodes)
}

// Connect adds an undirected link. If link.DelayMs is zero it is derived
// from the great-circle distance between the endpoints (plus a small
// last-metre floor so co-located nodes still cost something). If
// BandwidthMbps is zero a 10 Gbps default is used.
func (n *Network) Connect(a, b NodeID, link Link) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if a == b {
		panic("netsim: self-link")
	}
	link.A, link.B = a, b
	if link.DelayMs == 0 {
		link.DelayMs = geo.PropagationDelayMs(n.nodes[a].Loc, n.nodes[b].Loc)
		if link.DelayMs < 0.05 {
			link.DelayMs = 0.05
		}
	}
	if link.BandwidthMbps == 0 {
		link.BandwidthMbps = 10000
	}
	if link.JitterFrac == 0 {
		link.JitterFrac = 0.08
	}
	n.adj[a] = append(n.adj[a], edgeRef{to: b, link: link})
	n.adj[b] = append(n.adj[b], edgeRef{to: a, link: link})
	// Topology changed: routes computed so far may be stale.
	n.routeCache = make(map[[2]NodeID]*Path)
}

// Degree returns the number of links attached to a node.
func (n *Network) Degree(id NodeID) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.adj[id])
}

// Path is a routed path: the node sequence and the traversed links
// (len(Links) == len(Nodes)-1).
type Path struct {
	Nodes []Node
	Links []Link
}

// BaseOneWayMs returns the deterministic one-way delay of the path:
// link delays + peering penalties + per-node processing.
func (p *Path) BaseOneWayMs() float64 {
	var d float64
	for _, l := range p.Links {
		d += l.TotalDelayMs()
	}
	for _, node := range p.Nodes {
		d += node.ProcDelayMs
	}
	return d
}

// BottleneckMbps returns the minimum link bandwidth along the path.
func (p *Path) BottleneckMbps() float64 {
	min := math.Inf(1)
	for _, l := range p.Links {
		if l.BandwidthMbps < min {
			min = l.BandwidthMbps
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// LossProb returns the end-to-end packet loss probability.
func (p *Path) LossProb() float64 {
	keep := 1.0
	for _, l := range p.Links {
		keep *= 1 - l.LossProb
	}
	return 1 - keep
}

// Hops returns the number of forwarding hops (nodes after the source).
func (p *Path) Hops() int { return len(p.Nodes) - 1 }

// Route computes the shortest-delay path from src to dst. Ties are broken
// by preferring fewer hops, then lower node IDs, so routing is fully
// deterministic. Routes are cached.
func (n *Network) Route(src, dst NodeID) (*Path, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.routeLocked(src, dst)
}

func (n *Network) routeLocked(src, dst NodeID) (*Path, error) {
	if p, ok := n.routeCache[[2]NodeID{src, dst}]; ok {
		return p, nil
	}
	if int(src) >= len(n.nodes) || int(dst) >= len(n.nodes) || src < 0 || dst < 0 {
		return nil, fmt.Errorf("netsim: bad route endpoints %d -> %d", src, dst)
	}
	type state struct {
		cost float64
		hops int
		prev NodeID
		via  Link
		done bool
		seen bool
	}
	states := make([]state, len(n.nodes))
	states[src] = state{seen: true, prev: -1}
	// Simple O(V²) Dijkstra: topologies here are a few thousand nodes.
	for {
		// Pick the unfinished node with the smallest (cost, hops, id).
		best := NodeID(-1)
		for id := range states {
			s := &states[id]
			if !s.seen || s.done {
				continue
			}
			if best < 0 {
				best = NodeID(id)
				continue
			}
			b := &states[best]
			if s.cost < b.cost || (s.cost == b.cost && (s.hops < b.hops || (s.hops == b.hops && NodeID(id) < best))) {
				best = NodeID(id)
			}
		}
		if best < 0 {
			break
		}
		if best == dst {
			break
		}
		states[best].done = true
		// Valley-free constraint: a stub AS may not be crossed. If best
		// was entered from a different AS, it may only forward within its
		// own AS. The source node and ASN-0 nodes are unrestricted.
		uASN := n.nodes[best].ASN
		restricted := false
		if uASN != 0 && !n.transitAS[uASN] && best != src {
			prevASN := n.nodes[states[best].prev].ASN
			restricted = prevASN != uASN
		}
		for _, e := range n.adj[best] {
			if restricted && n.nodes[e.to].ASN != uASN {
				continue
			}
			c := states[best].cost + e.link.TotalDelayMs() + n.nodes[e.to].ProcDelayMs
			h := states[best].hops + 1
			s := &states[e.to]
			if !s.seen || c < s.cost || (c == s.cost && h < s.hops) {
				*s = state{cost: c, hops: h, prev: best, via: e.link, seen: true}
			}
		}
	}
	if !states[dst].seen {
		return nil, fmt.Errorf("netsim: no route %s -> %s", n.nodes[src].Name, n.nodes[dst].Name)
	}
	// Reconstruct.
	var revNodes []Node
	var revLinks []Link
	at := dst
	for at != src {
		revNodes = append(revNodes, n.nodes[at])
		revLinks = append(revLinks, states[at].via)
		at = states[at].prev
	}
	revNodes = append(revNodes, n.nodes[src])
	p := &Path{
		Nodes: make([]Node, 0, len(revNodes)),
		Links: make([]Link, 0, len(revLinks)),
	}
	for i := len(revNodes) - 1; i >= 0; i-- {
		p.Nodes = append(p.Nodes, revNodes[i])
	}
	for i := len(revLinks) - 1; i >= 0; i-- {
		p.Links = append(p.Links, revLinks[i])
	}
	n.routeCache[[2]NodeID{src, dst}] = p
	return p, nil
}

// RTTms samples a round-trip time over the path: twice the one-way delay
// with per-link jitter applied, inflated by the current load model's
// queueing term.
func (n *Network) RTTms(p *Path, src *rng.Source) float64 {
	var d float64
	for _, l := range p.Links {
		d += src.Jitter(l.TotalDelayMs(), l.JitterFrac)
	}
	for _, node := range p.Nodes {
		d += src.Jitter(node.ProcDelayMs, 0.3)
	}
	return 2 * d * queueInflation(n.loadFactor())
}

// NodesByKind returns the IDs of all nodes of the given kind, sorted.
func (n *Network) NodesByKind(kind NodeKind) []NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []NodeID
	for _, node := range n.nodes {
		if node.Kind == kind {
			out = append(out, node.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FindNode returns the first node with the given name.
func (n *Network) FindNode(name string) (Node, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, node := range n.nodes {
		if node.Name == name {
			return node, true
		}
	}
	return Node{}, false
}

// ConcatPaths joins consecutive path segments into one path. Each
// segment must start at the node the previous segment ended at. It is
// how sessions compose their pinned private leg (UE → assigned PGW) with
// the routed public leg (PGW → target), mirroring the fact that tunneled
// traffic cannot pick its breakout.
func ConcatPaths(segments ...*Path) (*Path, error) {
	var out *Path
	for _, seg := range segments {
		if seg == nil || len(seg.Nodes) == 0 {
			return nil, fmt.Errorf("netsim: empty path segment")
		}
		if out == nil {
			out = &Path{
				Nodes: append([]Node(nil), seg.Nodes...),
				Links: append([]Link(nil), seg.Links...),
			}
			continue
		}
		if out.Nodes[len(out.Nodes)-1].ID != seg.Nodes[0].ID {
			return nil, fmt.Errorf("netsim: discontiguous segments (%s -> %s)",
				out.Nodes[len(out.Nodes)-1].Name, seg.Nodes[0].Name)
		}
		out.Nodes = append(out.Nodes, seg.Nodes[1:]...)
		out.Links = append(out.Links, seg.Links...)
	}
	if out == nil {
		return nil, fmt.Errorf("netsim: no segments")
	}
	return out, nil
}
