package netsim

import "math"

// LoadModel returns the network's current utilization factor (≥ 0):
// 0 is an idle network, 1 a busy-hour one. The factor scales queueing
// delay on every sampled RTT and erodes available bandwidth, modeling
// the time-of-day confounder the paper's Discussion lists as absorbed
// into its measurement noise. A nil model means a constant lightly
// loaded network (the default used by all calibrated experiments).
type LoadModel func() float64

// SetLoadModel installs (or clears, with nil) the global load model.
// It affects RTT sampling and speedtests but NOT routing, which models
// the stable propagation floor. Unlike topology mutations it is allowed
// after Freeze — load is a measurement-time confounder, not topology —
// but swapping models while measurements run in other goroutines is the
// caller's race to avoid.
func (n *Network) SetLoadModel(m LoadModel) {
	n.loadMu.Lock()
	defer n.loadMu.Unlock()
	n.load = m
}

// loadFactor samples the current load (0 when unset).
func (n *Network) loadFactor() float64 {
	n.loadMu.RLock()
	m := n.load
	n.loadMu.RUnlock()
	if m == nil {
		return 0
	}
	f := m()
	if f < 0 {
		return 0
	}
	return f
}

// queueInflation converts a utilization factor into a delay multiplier
// using an M/M/1-flavored curve that stays finite: 1 + load²·0.6.
// At load 1 (busy hour) RTTs inflate by ~60%, consistent with busy-hour
// access-network measurements.
func queueInflation(load float64) float64 {
	return 1 + 0.6*load*load
}

// Diurnal returns a LoadModel that follows a sinusoidal daily cycle:
// lowest at peakHour+12, highest (=peak) at peakHour. The clock function
// supplies the current hour of day [0, 24); it is injected so simulated
// experiments control time explicitly (no wall-clock reads).
func Diurnal(peakHour, peak float64, clock func() float64) LoadModel {
	if peak < 0 {
		peak = 0
	}
	return func() float64 {
		h := math.Mod(clock(), 24)
		phase := (h - peakHour) / 24 * 2 * math.Pi
		// cos(0)=1 at the peak hour; map [-1,1] -> [0, peak].
		return peak * (math.Cos(phase) + 1) / 2
	}
}
