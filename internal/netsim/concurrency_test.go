package netsim

import (
	"sync"
	"testing"

	"roamsim/internal/rng"
)

// TestConcurrentRouteAndRTT hammers the frozen query surface from many
// goroutines. Run under -race this is the regression test for the
// lock-light routing fast path: cache hits take only shard read-locks,
// misses single-flight, and RTT sampling must not race with either or
// with a concurrent SetLoadModel.
func TestConcurrentRouteAndRTT(t *testing.T) {
	net := tieGraph(rng.New(11).Fork("concurrency"), 120)
	net.SetLoadModel(func() float64 { return 0.3 })
	net.Freeze()

	const goroutines = 16
	const iters = 400
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := rng.New(int64(g)) // per-goroutine stream, per the rng contract
			for i := 0; i < iters; i++ {
				a := NodeID(src.Intn(net.NumNodes()))
				b := NodeID(src.Intn(net.NumNodes()))
				if a == b {
					continue
				}
				p, err := net.Route(a, b)
				if err != nil {
					continue // valley-free dead ends are expected
				}
				if rtt := net.RTTms(p, src); rtt <= 0 {
					t.Errorf("non-positive RTT %f on %d->%d", rtt, a, b)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// The cache must have converged to one canonical *Path per pair:
	// repeated queries return the identical pointer.
	for i := 0; i < 50; i++ {
		a, b := NodeID(i%net.NumNodes()), NodeID((i*7+1)%net.NumNodes())
		if a == b {
			continue
		}
		p1, err1 := net.Route(a, b)
		p2, err2 := net.Route(a, b)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("route %d->%d: inconsistent errors %v vs %v", a, b, err1, err2)
		}
		if err1 == nil && p1 != p2 {
			t.Fatalf("route %d->%d: cache returned distinct paths", a, b)
		}
	}
}

// TestConcurrentRoutesMatchSerial checks that racing goroutines observe
// exactly the paths a serial computation produces — the single-flight
// cache must never publish a partially built or divergent path.
func TestConcurrentRoutesMatchSerial(t *testing.T) {
	build := func() *Network {
		return tieGraph(rng.New(23).Fork("match"), 80)
	}
	serial := build()
	serial.Freeze()
	concurrent := build()
	concurrent.Freeze()

	type pair struct{ a, b NodeID }
	var pairs []pair
	for a := 0; a < 80; a += 2 {
		for b := 1; b < 80; b += 3 {
			if NodeID(a) != NodeID(b) {
				pairs = append(pairs, pair{NodeID(a), NodeID(b)})
			}
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(pairs); i += 8 {
				concurrent.Route(pairs[i].a, pairs[i].b)
			}
		}(g)
	}
	wg.Wait()

	for _, pr := range pairs {
		want, wantErr := serial.Route(pr.a, pr.b)
		got, gotErr := concurrent.Route(pr.a, pr.b)
		if (wantErr != nil) != (gotErr != nil) {
			t.Fatalf("route %d->%d: serial err=%v concurrent err=%v", pr.a, pr.b, wantErr, gotErr)
		}
		if wantErr == nil && !samePath(want, got) {
			t.Fatalf("route %d->%d: concurrent path diverges from serial", pr.a, pr.b)
		}
	}
}

// TestFreezeContract pins the build/query phase split: topology
// mutations panic after Freeze, while SetLoadModel (a measurement-time
// confounder, not topology) remains legal.
func TestFreezeContract(t *testing.T) {
	net := New()
	a := net.AddNode(Node{Name: "a"})
	b := net.AddNode(Node{Name: "b"})
	net.Connect(a, b, Link{DelayMs: 1})
	if net.Frozen() {
		t.Fatal("network frozen before Freeze")
	}
	net.Freeze()
	if !net.Frozen() {
		t.Fatal("Frozen() false after Freeze")
	}

	for name, mutate := range map[string]func(){
		"AddNode":      func() { net.AddNode(Node{Name: "c"}) },
		"Connect":      func() { net.Connect(a, b, Link{DelayMs: 2}) },
		"SetTransitAS": func() { net.SetTransitAS(42) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s after Freeze did not panic", name)
				}
			}()
			mutate()
		}()
	}

	// Queries and the load model stay available.
	net.SetLoadModel(func() float64 { return 1 })
	defer net.SetLoadModel(nil)
	if _, err := net.Route(a, b); err != nil {
		t.Fatalf("Route after Freeze: %v", err)
	}
	if got := net.NumNodes(); got != 2 {
		t.Fatalf("NumNodes = %d, want 2", got)
	}
}

// TestSingleFlightSharesComputation checks that many goroutines asking
// for the same missing route all get the identical cached *Path.
func TestSingleFlightSharesComputation(t *testing.T) {
	net := tieGraph(rng.New(31).Fork("flight"), 100)
	net.Freeze()

	const goroutines = 32
	paths := make([]*Path, goroutines)
	errs := make([]error, goroutines)
	var start, wg sync.WaitGroup
	start.Add(1)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			start.Wait()
			paths[g], errs[g] = net.Route(0, 99)
		}(g)
	}
	start.Done()
	wg.Wait()

	if errs[0] != nil {
		t.Fatalf("route failed: %v", errs[0])
	}
	for g := 1; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if paths[g] != paths[0] {
			t.Fatalf("goroutine %d got a different *Path than goroutine 0", g)
		}
	}
}
