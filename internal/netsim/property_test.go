package netsim

import (
	"math"
	"testing"

	"roamsim/internal/rng"
)

// randomGraph builds a connected random graph with n nodes.
func randomGraph(src *rng.Source, n int) (*Network, []NodeID) {
	net := New()
	ids := make([]NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = net.AddNode(Node{Name: string(rune('a' + i))})
	}
	// Spanning chain guarantees connectivity.
	for i := 1; i < n; i++ {
		net.Connect(ids[i-1], ids[i], Link{DelayMs: src.Uniform(1, 50)})
	}
	// Extra random edges.
	extra := src.IntBetween(0, n*2)
	for e := 0; e < extra; e++ {
		a, b := src.Intn(n), src.Intn(n)
		if a != b {
			net.Connect(ids[a], ids[b], Link{DelayMs: src.Uniform(1, 50)})
		}
	}
	return net, ids
}

// bruteForceCost finds the optimal path cost by exhaustive DFS (small n).
func bruteForceCost(net *Network, ids []NodeID, src, dst NodeID) float64 {
	best := math.Inf(1)
	visited := make(map[NodeID]bool)
	var dfs func(at NodeID, cost float64)
	dfs = func(at NodeID, cost float64) {
		if cost >= best {
			return
		}
		if at == dst {
			best = cost
			return
		}
		visited[at] = true
		for _, to := range ids {
			if visited[to] || to == at {
				continue
			}
			// Find the cheapest direct link between at and to.
			link, ok := cheapestLink(net, at, to)
			if !ok {
				continue
			}
			dfs(to, cost+link.TotalDelayMs()+net.Node(to).ProcDelayMs)
		}
		visited[at] = false
	}
	dfs(src, 0)
	return best
}

func cheapestLink(net *Network, a, b NodeID) (Link, bool) {
	best := Link{DelayMs: math.Inf(1)}
	found := false
	for _, e := range net.adj[a] {
		if e.to == b && e.link.TotalDelayMs() < best.TotalDelayMs() {
			best = e.link
			found = true
		}
	}
	return best, found
}

// TestRouteMatchesBruteForce checks Dijkstra optimality on many random
// small graphs (no AS restrictions, so plain shortest path applies).
func TestRouteMatchesBruteForce(t *testing.T) {
	src := rng.New(99)
	for trial := 0; trial < 60; trial++ {
		n := src.IntBetween(3, 8)
		net, ids := randomGraph(src, n)
		from, to := ids[0], ids[n-1]
		p, err := net.Route(from, to)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := p.BaseOneWayMs() - net.Node(from).ProcDelayMs // brute force excludes source proc
		want := bruteForceCost(net, ids, from, to)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("trial %d: dijkstra %f != brute force %f", trial, got, want)
		}
	}
}

// TestRoutePathWellFormed checks structural invariants on random graphs:
// consecutive nodes are adjacent, no node repeats, endpoints correct.
func TestRoutePathWellFormed(t *testing.T) {
	src := rng.New(100)
	for trial := 0; trial < 40; trial++ {
		n := src.IntBetween(3, 12)
		net, ids := randomGraph(src, n)
		a, b := ids[src.Intn(n)], ids[src.Intn(n)]
		if a == b {
			continue
		}
		p, err := net.Route(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if p.Nodes[0].ID != a || p.Nodes[len(p.Nodes)-1].ID != b {
			t.Fatal("endpoints wrong")
		}
		if len(p.Links) != len(p.Nodes)-1 {
			t.Fatal("links/nodes mismatch")
		}
		seen := map[NodeID]bool{}
		for _, node := range p.Nodes {
			if seen[node.ID] {
				t.Fatal("path revisits a node")
			}
			seen[node.ID] = true
		}
		for i, l := range p.Links {
			u, v := p.Nodes[i].ID, p.Nodes[i+1].ID
			if !(l.A == u && l.B == v) && !(l.A == v && l.B == u) {
				t.Fatalf("link %d does not connect consecutive nodes", i)
			}
		}
	}
}

// TestTracerouteHopCountMatchesPath: responding or not, the traceroute
// covers exactly the forwarding hops of its path.
func TestTracerouteHopCountMatchesPath(t *testing.T) {
	src := rng.New(101)
	for trial := 0; trial < 30; trial++ {
		n := src.IntBetween(3, 10)
		net, ids := randomGraph(src, n)
		p, err := net.Route(ids[0], ids[n-1])
		if err != nil {
			t.Fatal(err)
		}
		tr := net.Traceroute(p, src)
		if len(tr.Hops) != p.Hops() {
			t.Fatalf("hops %d != path hops %d", len(tr.Hops), p.Hops())
		}
		for i, h := range tr.Hops {
			if h.TTL != i+1 {
				t.Fatal("TTLs must be sequential")
			}
			if h.Responded && h.BestRTTms <= 0 {
				t.Fatal("responding hop without RTT")
			}
		}
	}
}

// TestRTTAlwaysPositiveAndBounded: RTT samples stay within sane bounds
// of the deterministic base.
func TestRTTAlwaysPositiveAndBounded(t *testing.T) {
	src := rng.New(102)
	for trial := 0; trial < 20; trial++ {
		net, ids := randomGraph(src, src.IntBetween(3, 8))
		p, err := net.Route(ids[0], ids[len(ids)-1])
		if err != nil {
			t.Fatal(err)
		}
		base := 2 * p.BaseOneWayMs()
		for i := 0; i < 50; i++ {
			rtt := net.RTTms(p, src)
			if rtt <= 0 || rtt < base*0.6 || rtt > base*1.6 {
				t.Fatalf("RTT %f out of bounds for base %f", rtt, base)
			}
		}
	}
}

// TestBottleneckNeverExceedsAnyLink is the defining property of the
// bottleneck.
func TestBottleneckNeverExceedsAnyLink(t *testing.T) {
	src := rng.New(103)
	net := New()
	a := net.AddNode(Node{Name: "a"})
	b := net.AddNode(Node{Name: "b"})
	c := net.AddNode(Node{Name: "c"})
	net.Connect(a, b, Link{DelayMs: 1, BandwidthMbps: src.Uniform(1, 100)})
	net.Connect(b, c, Link{DelayMs: 1, BandwidthMbps: src.Uniform(1, 100)})
	p, _ := net.Route(a, c)
	bn := p.BottleneckMbps()
	for _, l := range p.Links {
		if bn > l.BandwidthMbps {
			t.Fatalf("bottleneck %f exceeds link %f", bn, l.BandwidthMbps)
		}
	}
}
