package netsim

import (
	"fmt"
	"testing"

	"roamsim/internal/ipreg"
	"roamsim/internal/rng"
)

// referenceRoute is the pre-heap O(V²) linear min-scan Dijkstra, kept
// verbatim as the oracle: the heap implementation must settle nodes in
// the same (cost, hops, id) order and reconstruct identical paths.
func referenceRoute(n *Network, src, dst NodeID) (*Path, error) {
	if int(src) >= len(n.nodes) || int(dst) >= len(n.nodes) || src < 0 || dst < 0 {
		return nil, fmt.Errorf("netsim: bad route endpoints %d -> %d", src, dst)
	}
	type state struct {
		cost float64
		hops int
		prev NodeID
		via  Link
		done bool
		seen bool
	}
	states := make([]state, len(n.nodes))
	states[src] = state{seen: true, prev: -1}
	for {
		// Pick the unfinished node with the smallest (cost, hops, id).
		best := NodeID(-1)
		for id := range states {
			s := &states[id]
			if !s.seen || s.done {
				continue
			}
			if best < 0 {
				best = NodeID(id)
				continue
			}
			b := &states[best]
			if s.cost < b.cost || (s.cost == b.cost && (s.hops < b.hops || (s.hops == b.hops && NodeID(id) < best))) {
				best = NodeID(id)
			}
		}
		if best < 0 {
			break
		}
		if best == dst {
			break
		}
		states[best].done = true
		uASN := n.nodes[best].ASN
		restricted := false
		if uASN != 0 && !n.transitAS[uASN] && best != src {
			prevASN := n.nodes[states[best].prev].ASN
			restricted = prevASN != uASN
		}
		for _, e := range n.adj[best] {
			if restricted && n.nodes[e.to].ASN != uASN {
				continue
			}
			c := states[best].cost + e.link.TotalDelayMs() + n.nodes[e.to].ProcDelayMs
			h := states[best].hops + 1
			s := &states[e.to]
			if !s.seen || c < s.cost || (c == s.cost && h < s.hops) {
				*s = state{cost: c, hops: h, prev: best, via: e.link, seen: true}
			}
		}
	}
	if !states[dst].seen {
		return nil, fmt.Errorf("netsim: no route %s -> %s", n.nodes[src].Name, n.nodes[dst].Name)
	}
	var revNodes []Node
	var revLinks []Link
	at := dst
	for at != src {
		revNodes = append(revNodes, n.nodes[at])
		revLinks = append(revLinks, states[at].via)
		at = states[at].prev
	}
	revNodes = append(revNodes, n.nodes[src])
	p := &Path{
		Nodes: make([]Node, 0, len(revNodes)),
		Links: make([]Link, 0, len(revLinks)),
	}
	for i := len(revNodes) - 1; i >= 0; i-- {
		p.Nodes = append(p.Nodes, revNodes[i])
	}
	for i := len(revLinks) - 1; i >= 0; i-- {
		p.Links = append(p.Links, revLinks[i])
	}
	return p, nil
}

// tieGraph builds a random graph with quantized delays (many exact cost
// ties) and a mix of stub and transit ASes, so both the tie-break and
// the valley-free restriction are exercised.
func tieGraph(src *rng.Source, n int) *Network {
	net := New()
	asns := []ipreg.ASN{0, 0, 100, 200, 300, 400}
	for i := 0; i < n; i++ {
		net.AddNode(Node{
			Name: fmt.Sprintf("n%d", i),
			ASN:  asns[src.Intn(len(asns))],
		})
	}
	net.SetTransitAS(100)
	net.SetTransitAS(200)
	// Spanning chain for connectivity, then random extra edges. Delays
	// drawn from a tiny integer set to force (cost, hops, id) ties.
	for i := 1; i < n; i++ {
		net.Connect(NodeID(i-1), NodeID(i), Link{DelayMs: float64(src.IntBetween(1, 3))})
	}
	extra := n * 3
	for e := 0; e < extra; e++ {
		a, b := src.Intn(n), src.Intn(n)
		if a != b {
			net.Connect(NodeID(a), NodeID(b), Link{DelayMs: float64(src.IntBetween(1, 3))})
		}
	}
	return net
}

func samePath(a, b *Path) bool {
	if len(a.Nodes) != len(b.Nodes) || len(a.Links) != len(b.Links) {
		return false
	}
	for i := range a.Nodes {
		if a.Nodes[i].ID != b.Nodes[i].ID {
			return false
		}
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			return false
		}
	}
	return true
}

// TestHeapDijkstraMatchesReference verifies the container/heap
// implementation returns byte-identical paths to the former linear
// min-scan across random tie-heavy topologies, including unreachable
// pairs (valley-free dead ends must error identically).
func TestHeapDijkstraMatchesReference(t *testing.T) {
	src := rng.New(7)
	for trial := 0; trial < 20; trial++ {
		net := tieGraph(src.Fork(fmt.Sprintf("trial%d", trial)), 40)
		for a := 0; a < 40; a += 3 {
			for b := 0; b < 40; b += 3 {
				if a == b {
					continue
				}
				want, wantErr := referenceRoute(net, NodeID(a), NodeID(b))
				got, gotErr := net.dijkstra(NodeID(a), NodeID(b))
				if (wantErr != nil) != (gotErr != nil) {
					t.Fatalf("trial %d route %d->%d: reference err=%v, heap err=%v",
						trial, a, b, wantErr, gotErr)
				}
				if wantErr != nil {
					continue
				}
				if !samePath(want, got) {
					t.Fatalf("trial %d route %d->%d: paths diverge\nreference: %v\nheap:      %v",
						trial, a, b, pathIDs(want), pathIDs(got))
				}
			}
		}
	}
}

func pathIDs(p *Path) []NodeID {
	out := make([]NodeID, len(p.Nodes))
	for i, n := range p.Nodes {
		out[i] = n.ID
	}
	return out
}
