package netsim

import (
	"math"

	"roamsim/internal/ipaddr"
	"roamsim/internal/rng"
)

// HopRecord is one line of a traceroute: the TTL, whether the hop
// answered, the address it answered from, and the best observed RTT,
// mirroring mtr's per-hop output used throughout Section 4.3.
type HopRecord struct {
	TTL       int
	Responded bool
	Addr      ipaddr.Addr
	NodeName  string
	Kind      NodeKind
	BestRTTms float64
}

// TracerouteResult is the full output of one traceroute run.
type TracerouteResult struct {
	Hops []HopRecord
	// DestReached reports whether the final hop answered.
	DestReached bool
}

// Traceroute probes every hop along the path. Each hop is probed three
// times (mtr-style); the recorded RTT is the best of the three. Nodes
// with a low ICMPReplyProb may appear as '*' (Responded=false), exactly
// like the silent CG-NATs the paper reports for Germany and Qatar.
func (n *Network) Traceroute(p *Path, src *rng.Source) TracerouteResult {
	res := TracerouteResult{Hops: make([]HopRecord, 0, len(p.Nodes)-1)}
	var cum float64
	for i := 1; i < len(p.Nodes); i++ {
		node := p.Nodes[i]
		link := p.Links[i-1]
		cum += link.TotalDelayMs() + node.ProcDelayMs
		rec := HopRecord{TTL: i, Addr: node.Addr, NodeName: node.Name, Kind: node.Kind}
		if src.Bool(node.ICMPReplyProb) {
			rec.Responded = true
			best := math.Inf(1)
			for probe := 0; probe < 3; probe++ {
				rtt := 2 * src.Jitter(cum, link.JitterFrac)
				if rtt < best {
					best = rtt
				}
			}
			rec.BestRTTms = best
		}
		res.Hops = append(res.Hops, rec)
	}
	if len(res.Hops) > 0 {
		res.DestReached = res.Hops[len(res.Hops)-1].Responded
	}
	return res
}

// TCPThroughputMbps estimates steady-state TCP throughput over a path
// using the Mathis model, bounded by the bottleneck capacity:
//
//	rate ≤ min(bottleneck, MSS/RTT · C/√p)
//
// with C ≈ 1.22 and MSS 1460 bytes. A tiny residual loss floor keeps the
// model finite on loss-free simulated paths; in practice roaming paths
// have non-negligible loss configured.
func TCPThroughputMbps(rttMs, lossProb, bottleneckMbps float64) float64 {
	if rttMs <= 0 {
		return bottleneckMbps
	}
	const mssBits = 1460 * 8
	p := lossProb
	if p < 1e-5 {
		p = 1e-5
	}
	mathis := (mssBits / (rttMs / 1000)) * 1.22 / math.Sqrt(p) / 1e6
	if mathis < bottleneckMbps {
		return mathis
	}
	return bottleneckMbps
}

// TransferOptions configure a simulated object download.
type TransferOptions struct {
	// PolicyCapMbps is an additional rate cap (e.g. a v-MNO roamer
	// policy). Zero means uncapped.
	PolicyCapMbps float64
	// Handshakes is the number of RTTs spent before the first payload
	// byte (TCP connect = 1, +TLS = 2 more, +DNS is accounted separately).
	Handshakes int
}

// DownloadTimeMs estimates the time to fetch size bytes over the path:
// handshake RTTs, slow-start ramp, then steady-state transfer at the
// effective rate. It matches what curl's time_total would report for the
// CDN experiments.
func (n *Network) DownloadTimeMs(p *Path, sizeBytes int, opts TransferOptions, src *rng.Source) float64 {
	rtt := n.RTTms(p, src)
	rate := TCPThroughputMbps(rtt, p.LossProb(), p.BottleneckMbps())
	if opts.PolicyCapMbps > 0 && rate > opts.PolicyCapMbps {
		rate = opts.PolicyCapMbps
	}
	if rate <= 0 {
		return math.Inf(1)
	}
	handshake := float64(opts.Handshakes) * rtt

	// Slow start: cwnd doubles each RTT from 10 segments (IW10).
	const mss = 1460.0
	remaining := float64(sizeBytes)
	cwnd := 10 * mss
	rateBytesPerMs := rate * 1e6 / 8 / 1000
	var elapsed float64
	for remaining > 0 {
		perRTT := cwnd
		if perRTT > rateBytesPerMs*rtt {
			// cwnd has reached the path's bandwidth-delay product:
			// finish at line rate.
			elapsed += remaining / rateBytesPerMs
			remaining = 0
			break
		}
		if remaining <= perRTT {
			elapsed += rtt * remaining / perRTT
			remaining = 0
			break
		}
		remaining -= perRTT
		elapsed += rtt
		cwnd *= 2
	}
	return handshake + elapsed
}

// SpeedtestResult is what an Ookla-style bandwidth test observes.
type SpeedtestResult struct {
	LatencyMs    float64
	DownloadMbps float64
	UploadMbps   float64
}

// Speedtest simulates a multi-connection bandwidth test against a server
// at the end of the path. Multi-connection tests approach the effective
// cap rather than a single TCP flow's Mathis bound, so the result is the
// policy/bottleneck cap perturbed by measured load, with an uplink that is
// a configured fraction of the downlink (radio schedulers are asymmetric).
func (n *Network) Speedtest(p *Path, downCapMbps, upCapMbps float64, src *rng.Source) SpeedtestResult {
	rtt := n.RTTms(p, src)
	bneck := p.BottleneckMbps()
	down := bneck
	if downCapMbps > 0 && downCapMbps < down {
		down = downCapMbps
	}
	up := bneck
	if upCapMbps > 0 && upCapMbps < up {
		up = upCapMbps
	}
	// Busy-hour load erodes the attainable share of the capacity.
	if load := n.loadFactor(); load > 0 {
		erode := 1 - 0.35*load
		if erode < 0.2 {
			erode = 0.2
		}
		down *= erode
		up *= erode
	}
	// Even parallel connections degrade on long-RTT lossy paths: apply a
	// soft penalty when the single-flow Mathis bound drops below the cap.
	single := TCPThroughputMbps(rtt, p.LossProb(), bneck)
	const flows = 16
	if agg := single * flows; agg < down {
		down = agg
	}
	if agg := single * flows * 0.6; agg < up {
		up = agg
	}
	return SpeedtestResult{
		LatencyMs:    rtt,
		DownloadMbps: src.Jitter(down, 0.18),
		UploadMbps:   src.Jitter(up, 0.22),
	}
}
