package netsim

import (
	"math"
	"testing"

	"roamsim/internal/geo"
	"roamsim/internal/ipaddr"
	"roamsim/internal/rng"
)

// lineTopology builds a simple UE - SGW - PGW - server chain.
func lineTopology(t *testing.T) (*Network, []NodeID) {
	t.Helper()
	n := New()
	ue := n.AddNode(Node{Name: "ue", Kind: KindUE, Loc: geo.MustCity("Dubai").Loc,
		Addr: ipaddr.MustParse("10.0.0.2")})
	sgw := n.AddNode(Node{Name: "sgw", Kind: KindSGW, Loc: geo.MustCity("Dubai").Loc,
		Addr: ipaddr.MustParse("10.0.0.1")})
	pgw := n.AddNode(Node{Name: "pgw", Kind: KindPGW, Loc: geo.MustCity("Singapore").Loc,
		Addr: ipaddr.MustParse("202.166.126.4")})
	srv := n.AddNode(Node{Name: "google", Kind: KindServer, Loc: geo.MustCity("Singapore").Loc,
		Addr: ipaddr.MustParse("8.8.8.8")})
	n.Connect(ue, sgw, Link{DelayMs: 15, BandwidthMbps: 100}) // radio leg
	n.Connect(sgw, pgw, Link{BandwidthMbps: 1000})            // geo-derived ~ Dubai-Singapore
	n.Connect(pgw, srv, Link{DelayMs: 1, BandwidthMbps: 10000})
	return n, []NodeID{ue, sgw, pgw, srv}
}

func TestRouteLine(t *testing.T) {
	n, ids := lineTopology(t)
	p, err := n.Route(ids[0], ids[3])
	if err != nil {
		t.Fatal(err)
	}
	if p.Hops() != 3 {
		t.Errorf("hops = %d, want 3", p.Hops())
	}
	if p.Nodes[0].Name != "ue" || p.Nodes[3].Name != "google" {
		t.Errorf("endpoints wrong: %s..%s", p.Nodes[0].Name, p.Nodes[3].Name)
	}
	// Dubai-Singapore geo-derived delay should dominate: one-way > 40 ms.
	if ow := p.BaseOneWayMs(); ow < 40 || ow > 120 {
		t.Errorf("one-way delay = %f ms", ow)
	}
	if b := p.BottleneckMbps(); b != 100 {
		t.Errorf("bottleneck = %f, want 100 (radio leg)", b)
	}
}

func TestRoutePrefersLowDelay(t *testing.T) {
	n := New()
	a := n.AddNode(Node{Name: "a", Loc: geo.Point{Lat: 0, Lon: 0}})
	b := n.AddNode(Node{Name: "b", Loc: geo.Point{Lat: 0, Lon: 1}})
	slow := n.AddNode(Node{Name: "slow", Loc: geo.Point{Lat: 0, Lon: 0.5}})
	fast := n.AddNode(Node{Name: "fast", Loc: geo.Point{Lat: 0, Lon: 0.5}})
	n.Connect(a, slow, Link{DelayMs: 50})
	n.Connect(slow, b, Link{DelayMs: 50})
	n.Connect(a, fast, Link{DelayMs: 5})
	n.Connect(fast, b, Link{DelayMs: 5})
	p, err := n.Route(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes[1].Name != "fast" {
		t.Errorf("routed via %s, want fast", p.Nodes[1].Name)
	}
}

func TestRoutePeeringPenaltyChangesPath(t *testing.T) {
	// Identical delays, but one transit edge carries a peering penalty:
	// this is the mechanism behind the UAE-beats-Pakistan finding.
	n := New()
	a := n.AddNode(Node{Name: "a"})
	b := n.AddNode(Node{Name: "b"})
	v1 := n.AddNode(Node{Name: "via1"})
	v2 := n.AddNode(Node{Name: "via2"})
	n.Connect(a, v1, Link{DelayMs: 10, PeeringPenaltyMs: 30})
	n.Connect(v1, b, Link{DelayMs: 10})
	n.Connect(a, v2, Link{DelayMs: 10})
	n.Connect(v2, b, Link{DelayMs: 10})
	p, err := n.Route(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes[1].Name != "via2" {
		t.Errorf("routed via %s, want via2 (penalty-free)", p.Nodes[1].Name)
	}
}

func TestRouteNoPath(t *testing.T) {
	n := New()
	a := n.AddNode(Node{Name: "a"})
	b := n.AddNode(Node{Name: "b"})
	if _, err := n.Route(a, b); err == nil {
		t.Error("expected no-route error")
	}
}

func TestRouteDeterministic(t *testing.T) {
	n, ids := lineTopology(t)
	p1, _ := n.Route(ids[0], ids[3])
	p2, _ := n.Route(ids[0], ids[3])
	if p1 != p2 {
		t.Error("route cache should return identical path pointer")
	}
}

func TestRTTStability(t *testing.T) {
	n, ids := lineTopology(t)
	p, _ := n.Route(ids[0], ids[3])
	base := p.BaseOneWayMs()
	s := rng.New(1)
	for i := 0; i < 200; i++ {
		rtt := n.RTTms(p, s)
		if rtt < 2*base*0.8 || rtt > 2*base*1.25 {
			t.Fatalf("RTT %f wildly off base %f", rtt, 2*base)
		}
	}
}

func TestTracerouteStructure(t *testing.T) {
	n, ids := lineTopology(t)
	p, _ := n.Route(ids[0], ids[3])
	tr := n.Traceroute(p, rng.New(2))
	if len(tr.Hops) != 3 {
		t.Fatalf("got %d hops, want 3", len(tr.Hops))
	}
	if !tr.DestReached {
		t.Error("destination should respond")
	}
	// RTTs must be (weakly) increasing in expectation; check the
	// cumulative structure: last hop RTT > first hop RTT.
	if tr.Hops[2].BestRTTms <= tr.Hops[0].BestRTTms {
		t.Errorf("hop RTTs not increasing: %v vs %v", tr.Hops[0].BestRTTms, tr.Hops[2].BestRTTms)
	}
	// Private/public split: hop 1 private (sgw), hop 2 public (pgw).
	if !tr.Hops[0].Addr.IsPrivate() {
		t.Error("sgw hop should be private")
	}
	if tr.Hops[1].Addr.IsPrivate() {
		t.Error("pgw hop should be public")
	}
}

func TestTracerouteSilentNode(t *testing.T) {
	n := New()
	ue := n.AddNode(Node{Name: "ue", Kind: KindUE})
	mute := n.AddNode(Node{Name: "cgnat", Kind: KindCGNAT, ICMPReplyProb: -1})
	srv := n.AddNode(Node{Name: "srv", Kind: KindServer})
	n.Connect(ue, mute, Link{DelayMs: 1})
	n.Connect(mute, srv, Link{DelayMs: 1})
	p, _ := n.Route(ue, srv)
	tr := n.Traceroute(p, rng.New(3))
	if tr.Hops[0].Responded {
		t.Error("silent node must not respond")
	}
	if !tr.Hops[1].Responded {
		t.Error("server should respond")
	}
}

func TestTCPThroughputModel(t *testing.T) {
	// Short RTT, clean path: capped by bottleneck.
	if got := TCPThroughputMbps(5, 0, 100); got != 100 {
		t.Errorf("clean short path = %f, want bottleneck 100", got)
	}
	// Long RTT with loss: Mathis-bound well below bottleneck.
	long := TCPThroughputMbps(300, 0.01, 1000)
	short := TCPThroughputMbps(30, 0.01, 1000)
	if long >= short {
		t.Errorf("throughput must fall with RTT: %f vs %f", long, short)
	}
	lossy := TCPThroughputMbps(30, 0.05, 1000)
	if lossy >= short {
		t.Errorf("throughput must fall with loss: %f vs %f", lossy, short)
	}
	if TCPThroughputMbps(0, 0.5, 42) != 42 {
		t.Error("zero RTT returns bottleneck")
	}
}

func TestDownloadTimeMonotoneInSize(t *testing.T) {
	n, ids := lineTopology(t)
	p, _ := n.Route(ids[0], ids[3])
	small := n.DownloadTimeMs(p, 30_000, TransferOptions{Handshakes: 2}, rng.New(4))
	large := n.DownloadTimeMs(p, 3_000_000, TransferOptions{Handshakes: 2}, rng.New(4))
	if small >= large {
		t.Errorf("30 KB (%f ms) should download faster than 3 MB (%f ms)", small, large)
	}
	if small <= 0 || math.IsInf(large, 1) {
		t.Errorf("degenerate times: %f, %f", small, large)
	}
}

func TestDownloadTimePolicyCap(t *testing.T) {
	n, ids := lineTopology(t)
	p, _ := n.Route(ids[0], ids[3])
	free := n.DownloadTimeMs(p, 1_000_000, TransferOptions{Handshakes: 1}, rng.New(5))
	capped := n.DownloadTimeMs(p, 1_000_000, TransferOptions{Handshakes: 1, PolicyCapMbps: 1}, rng.New(5))
	if capped <= free {
		t.Errorf("1 Mbps cap (%f ms) should be slower than uncapped (%f ms)", capped, free)
	}
}

func TestSpeedtestRespectsCaps(t *testing.T) {
	n, ids := lineTopology(t)
	p, _ := n.Route(ids[0], ids[3])
	s := rng.New(6)
	for i := 0; i < 100; i++ {
		res := n.Speedtest(p, 20, 10, s)
		if res.DownloadMbps > 20*1.2 {
			t.Fatalf("download %f exceeds cap", res.DownloadMbps)
		}
		if res.UploadMbps > 10*1.25 {
			t.Fatalf("upload %f exceeds cap", res.UploadMbps)
		}
		if res.LatencyMs <= 0 {
			t.Fatal("latency must be positive")
		}
	}
}

func TestSpeedtestLongPathDegradesThroughput(t *testing.T) {
	// Same caps, lossy long path vs clean short path.
	n := New()
	ue := n.AddNode(Node{Name: "ue", Loc: geo.MustCity("Islamabad").Loc})
	near := n.AddNode(Node{Name: "near", Kind: KindServer, Loc: geo.MustCity("Islamabad").Loc})
	far := n.AddNode(Node{Name: "far", Kind: KindServer, Loc: geo.MustCity("Ashburn").Loc})
	n.Connect(ue, near, Link{DelayMs: 5, BandwidthMbps: 1000})
	n.Connect(ue, far, Link{BandwidthMbps: 1000, LossProb: 0.02})
	pNear, _ := n.Route(ue, near)
	pFar, _ := n.Route(ue, far)
	s := rng.New(7)
	var sumNear, sumFar float64
	for i := 0; i < 50; i++ {
		sumNear += n.Speedtest(pNear, 500, 100, s).DownloadMbps
		sumFar += n.Speedtest(pFar, 500, 100, s).DownloadMbps
	}
	if sumFar >= sumNear {
		t.Errorf("long lossy path should be slower: near=%f far=%f", sumNear/50, sumFar/50)
	}
}

func TestNodesByKindAndFindNode(t *testing.T) {
	n, _ := lineTopology(t)
	if got := n.NodesByKind(KindPGW); len(got) != 1 {
		t.Errorf("pgw count = %d", len(got))
	}
	if _, ok := n.FindNode("sgw"); !ok {
		t.Error("FindNode sgw failed")
	}
	if _, ok := n.FindNode("nope"); ok {
		t.Error("FindNode nope should fail")
	}
}

func TestConnectDefaultsAndPanics(t *testing.T) {
	n := New()
	a := n.AddNode(Node{Name: "a", Loc: geo.MustCity("Paris").Loc})
	b := n.AddNode(Node{Name: "b", Loc: geo.MustCity("Amsterdam").Loc})
	n.Connect(a, b, Link{})
	p, err := n.Route(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Paris-Amsterdam ≈ 430 km -> ~4 ms one way with route factor.
	if d := p.Links[0].DelayMs; d < 2 || d > 8 {
		t.Errorf("geo-derived delay = %f ms", d)
	}
	if p.Links[0].BandwidthMbps != 10000 {
		t.Errorf("default bandwidth = %f", p.Links[0].BandwidthMbps)
	}
	defer func() {
		if recover() == nil {
			t.Error("self-link should panic")
		}
	}()
	n.Connect(a, a, Link{})
}

func TestPathLossProb(t *testing.T) {
	p := &Path{Links: []Link{{LossProb: 0.1}, {LossProb: 0.1}}}
	want := 1 - 0.9*0.9
	if got := p.LossProb(); math.Abs(got-want) > 1e-9 {
		t.Errorf("loss = %f, want %f", got, want)
	}
}

func TestValleyFreeRouting(t *testing.T) {
	// Two PGW-provider CG-NATs both peer with a content SP's border
	// router. Traffic from one CG-NAT to the other must NOT shortcut
	// through the stub SP, even when that path is shorter.
	n := New()
	cgA := n.AddNode(Node{Name: "cgnat-a", Kind: KindCGNAT, ASN: 54825})
	cgB := n.AddNode(Node{Name: "cgnat-b", Kind: KindCGNAT, ASN: 16276})
	spPeer := n.AddNode(Node{Name: "google-peer", Kind: KindRouter, ASN: 15169})
	spSrv := n.AddNode(Node{Name: "google-edge", Kind: KindServer, ASN: 15169})
	transit := n.AddNode(Node{Name: "transit", Kind: KindRouter, ASN: 38193})
	n.SetTransitAS(38193)
	n.Connect(cgA, spPeer, Link{DelayMs: 1})
	n.Connect(cgB, spPeer, Link{DelayMs: 1})
	n.Connect(spPeer, spSrv, Link{DelayMs: 0.2})
	// Legitimate (longer) route between the providers via a transit AS.
	n.Connect(cgA, transit, Link{DelayMs: 20})
	n.Connect(cgB, transit, Link{DelayMs: 20})

	// Reaching the SP through its own peering is fine.
	p, err := n.Route(cgA, spSrv)
	if err != nil || p.Hops() != 2 {
		t.Fatalf("route to SP: %v hops=%v", err, p)
	}
	// Crossing the SP between providers is forbidden: must use transit.
	p, err = n.Route(cgA, cgB)
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range p.Nodes {
		if node.ASN == 15169 {
			t.Fatalf("path valley-routed through the stub SP: %v", p.Nodes)
		}
	}
	if p.Nodes[1].Name != "transit" {
		t.Errorf("expected transit path, got via %s", p.Nodes[1].Name)
	}
}

func TestTransitASAllowsCrossing(t *testing.T) {
	n := New()
	a := n.AddNode(Node{Name: "a", ASN: 100})
	mid := n.AddNode(Node{Name: "mid", Kind: KindRouter, ASN: 200})
	b := n.AddNode(Node{Name: "b", ASN: 300})
	n.Connect(a, mid, Link{DelayMs: 1})
	n.Connect(mid, b, Link{DelayMs: 1})
	// 200 is a stub: no path.
	if _, err := n.Route(a, b); err == nil {
		t.Fatal("stub AS must not be crossable")
	}
	n.SetTransitAS(200)
	if _, err := n.Route(a, b); err != nil {
		t.Fatalf("transit AS should be crossable: %v", err)
	}
}

func TestConcatPaths(t *testing.T) {
	n, ids := lineTopology(t)
	p1, _ := n.Route(ids[0], ids[2])
	p2, _ := n.Route(ids[2], ids[3])
	joined, err := ConcatPaths(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := n.Route(ids[0], ids[3])
	if joined.Hops() != full.Hops() {
		t.Errorf("joined hops = %d, direct = %d", joined.Hops(), full.Hops())
	}
	if math.Abs(joined.BaseOneWayMs()-full.BaseOneWayMs()) > 1e-9 {
		t.Errorf("delays differ: %f vs %f", joined.BaseOneWayMs(), full.BaseOneWayMs())
	}
	// Discontiguous segments must fail.
	if _, err := ConcatPaths(p2, p1); err == nil {
		t.Error("discontiguous concat should fail")
	}
	if _, err := ConcatPaths(); err == nil {
		t.Error("empty concat should fail")
	}
	if _, err := ConcatPaths(nil); err == nil {
		t.Error("nil segment should fail")
	}
}

func TestLoadModelInflatesRTT(t *testing.T) {
	n, ids := lineTopology(t)
	p, _ := n.Route(ids[0], ids[3])
	src := rng.New(55)
	var idle, busy float64
	const k = 100
	for i := 0; i < k; i++ {
		idle += n.RTTms(p, src)
	}
	n.SetLoadModel(func() float64 { return 1 })
	for i := 0; i < k; i++ {
		busy += n.RTTms(p, src)
	}
	n.SetLoadModel(nil)
	if busy/idle < 1.4 || busy/idle > 1.8 {
		t.Errorf("busy-hour inflation = %.2fx, want ~1.6x", busy/idle)
	}
	// Negative load clamps to idle.
	n.SetLoadModel(func() float64 { return -3 })
	v := n.RTTms(p, src)
	n.SetLoadModel(nil)
	base := 2 * p.BaseOneWayMs()
	if v < base*0.6 || v > base*1.6 {
		t.Errorf("negative load mishandled: %f vs base %f", v, base)
	}
}

func TestLoadModelErodesSpeedtest(t *testing.T) {
	n, ids := lineTopology(t)
	p, _ := n.Route(ids[0], ids[3])
	src := rng.New(56)
	var idle, busy float64
	for i := 0; i < 60; i++ {
		idle += n.Speedtest(p, 50, 20, src).DownloadMbps
	}
	n.SetLoadModel(func() float64 { return 1 })
	for i := 0; i < 60; i++ {
		busy += n.Speedtest(p, 50, 20, src).DownloadMbps
	}
	n.SetLoadModel(nil)
	if busy >= idle*0.85 {
		t.Errorf("busy-hour throughput should drop: %.1f vs %.1f", busy/60, idle/60)
	}
}

func TestDiurnalModel(t *testing.T) {
	hour := 3.0
	m := Diurnal(20, 1, func() float64 { return hour })
	// Peak at hour 20.
	hour = 20
	if f := m(); f < 0.99 || f > 1.01 {
		t.Errorf("peak factor = %f, want 1", f)
	}
	// Trough 12 hours away.
	hour = 8
	if f := m(); f > 0.01 {
		t.Errorf("trough factor = %f, want ~0", f)
	}
	// Never negative, never above peak, 24h periodic.
	for h := 0.0; h < 48; h += 0.5 {
		hour = h
		f := m()
		if f < 0 || f > 1 {
			t.Fatalf("factor %f out of [0,1] at hour %f", f, h)
		}
		hour = h + 24
		if g := m(); mathAbs(g-f) > 1e-9 {
			t.Fatalf("not 24h periodic at %f", h)
		}
	}
	if Diurnal(12, -5, func() float64 { return 0 })() != 0 {
		t.Error("negative peak should clamp to 0")
	}
}

func mathAbs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
