package netsim

import (
	"container/heap"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"roamsim/internal/rng"
)

// Path is a routed path: the node sequence and the traversed links
// (len(Links) == len(Nodes)-1).
type Path struct {
	Nodes []Node
	Links []Link
}

// BaseOneWayMs returns the deterministic one-way delay of the path:
// link delays + peering penalties + per-node processing.
func (p *Path) BaseOneWayMs() float64 {
	var d float64
	for _, l := range p.Links {
		d += l.TotalDelayMs()
	}
	for _, node := range p.Nodes {
		d += node.ProcDelayMs
	}
	return d
}

// BottleneckMbps returns the minimum link bandwidth along the path.
func (p *Path) BottleneckMbps() float64 {
	min := math.Inf(1)
	for _, l := range p.Links {
		if l.BandwidthMbps < min {
			min = l.BandwidthMbps
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// LossProb returns the end-to-end packet loss probability.
func (p *Path) LossProb() float64 {
	keep := 1.0
	for _, l := range p.Links {
		keep *= 1 - l.LossProb
	}
	return 1 - keep
}

// Hops returns the number of forwarding hops (nodes after the source).
func (p *Path) Hops() int { return len(p.Nodes) - 1 }

// routeShards is the number of route-cache shards. Shard count trades
// memory for contention: with the campaign worker pool bounded by
// GOMAXPROCS, 64 shards keep the probability of two workers hitting the
// same shard lock low while staying cheap to invalidate during builds.
const routeShards = 64

// routeTable is the concurrent route cache: a sharded read-mostly map
// for the hit fast path plus a single-flight registry so a route missing
// from the cache is computed exactly once no matter how many goroutines
// ask for it simultaneously.
type routeTable struct {
	shards [routeShards]routeShard

	flightMu sync.Mutex
	flight   map[[2]NodeID]*routeFlight // guarded by flightMu

	// Cache effectiveness counters (see Network.RouteCacheStats). Plain
	// atomics so the hit fast path stays lock-free beyond its shard
	// read-lock.
	hits      atomic.Uint64
	misses    atomic.Uint64
	dijkstras atomic.Uint64
}

type routeShard struct {
	mu sync.RWMutex
	m  map[[2]NodeID]*Path // guarded by mu
}

type routeFlight struct {
	done chan struct{}
	p    *Path
	err  error
}

func (t *routeTable) init() {
	for i := range t.shards {
		//lint:allow guardedfield build phase: the table is not shared until the Network is published
		t.shards[i].m = make(map[[2]NodeID]*Path)
	}
	//lint:allow guardedfield build phase: the table is not shared until the Network is published
	t.flight = make(map[[2]NodeID]*routeFlight)
}

// invalidate drops every cached route. Build phase only (callers hold
// the topology write lock; concurrent queries are excluded).
func (t *routeTable) invalidate() {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		sh.m = make(map[[2]NodeID]*Path)
		sh.mu.Unlock()
	}
}

func shardOf(key [2]NodeID) uint64 {
	// Fibonacci-style mix of both endpoints so (src, dst) and (dst, src)
	// land on different shards and sequential IDs spread out.
	h := uint64(key[0])*0x9E3779B97F4A7C15 + uint64(key[1])*0xC2B2AE3D27D4EB4F
	return (h >> 32) % routeShards
}

// Route computes the shortest-delay path from src to dst. Ties are broken
// by preferring fewer hops, then lower node IDs, so routing is fully
// deterministic. Routes are cached: repeated queries return the same
// *Path pointer. Concurrent callers are safe; a cache hit takes only a
// shard read-lock, and concurrent misses for the same pair share one
// Dijkstra run (single-flight).
func (n *Network) Route(src, dst NodeID) (*Path, error) {
	key := [2]NodeID{src, dst}
	sh := &n.routes.shards[shardOf(key)]
	sh.mu.RLock()
	p, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		n.routes.hits.Add(1)
		return p, nil
	}
	n.routes.misses.Add(1)
	return n.routes.compute(key, sh, func() (*Path, error) {
		n.mu.RLock()
		defer n.mu.RUnlock()
		n.routes.dijkstras.Add(1)
		return n.dijkstra(src, dst)
	})
}

// RouteCacheStats reports cumulative route-cache effectiveness: cache
// hits, misses, and how many Dijkstra runs the misses actually cost
// (single-flight collapses concurrent misses for one pair into one run,
// so dijkstraRuns <= misses).
func (n *Network) RouteCacheStats() (hits, misses, dijkstraRuns uint64) {
	return n.routes.hits.Load(), n.routes.misses.Load(), n.routes.dijkstras.Load()
}

// compute runs fn for key exactly once across concurrent callers and
// caches a successful result in sh. Errors are not cached (they indicate
// bad endpoints or unreachable pairs, both rare and cheap to rediscover).
func (t *routeTable) compute(key [2]NodeID, sh *routeShard, fn func() (*Path, error)) (*Path, error) {
	t.flightMu.Lock()
	// Re-check the cache under flightMu: a concurrent flight may have
	// completed between our shard read and here.
	sh.mu.RLock()
	if p, ok := sh.m[key]; ok {
		sh.mu.RUnlock()
		t.flightMu.Unlock()
		return p, nil
	}
	sh.mu.RUnlock()
	if f, ok := t.flight[key]; ok {
		t.flightMu.Unlock()
		<-f.done
		return f.p, f.err
	}
	f := &routeFlight{done: make(chan struct{})}
	t.flight[key] = f
	t.flightMu.Unlock()

	f.p, f.err = fn()
	if f.err == nil {
		sh.mu.Lock()
		sh.m[key] = f.p
		sh.mu.Unlock()
	}
	close(f.done)

	t.flightMu.Lock()
	delete(t.flight, key)
	t.flightMu.Unlock()
	return f.p, f.err
}

// pqItem is one pending heap entry. Entries are immutable; when a node's
// tentative cost improves a fresh entry is pushed and the old one goes
// stale (lazy deletion).
type pqItem struct {
	cost float64
	hops int
	id   NodeID
}

// routePQ orders by (cost, hops, id) — exactly the pick order of the
// former O(V²) linear min-scan, so the heap implementation settles nodes
// in the same sequence and produces identical paths.
type routePQ []pqItem

func (q routePQ) Len() int { return len(q) }
func (q routePQ) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	if a.hops != b.hops {
		return a.hops < b.hops
	}
	return a.id < b.id
}
func (q routePQ) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *routePQ) Push(x any)   { *q = append(*q, x.(pqItem)) }
func (q *routePQ) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

type routeState struct {
	cost float64
	hops int
	prev NodeID
	via  Link
	done bool
	seen bool
}

// dijkstra is the heap-based shortest-path core, O(E log V). Callers
// must hold at least a read lock on n.mu. Determinism: the (cost, hops,
// id) heap order is total, tentative states only ever strictly improve
// (so stale entries never compare equal to live ones), and all edge
// costs are strictly positive (DelayMs ≥ 0.05, ProcDelayMs ≥ 0.15), so
// settled nodes never reopen — the settle order matches the linear scan.
func (n *Network) dijkstra(src, dst NodeID) (*Path, error) {
	if int(src) >= len(n.nodes) || int(dst) >= len(n.nodes) || src < 0 || dst < 0 {
		return nil, fmt.Errorf("netsim: bad route endpoints %d -> %d", src, dst)
	}
	states := make([]routeState, len(n.nodes))
	states[src] = routeState{seen: true, prev: -1}
	pq := routePQ{{cost: 0, hops: 0, id: src}}
	heap.Init(&pq)
	for len(pq) > 0 {
		it := heap.Pop(&pq).(pqItem)
		s := &states[it.id]
		if s.done || it.cost != s.cost || it.hops != s.hops {
			continue // stale entry: this node was improved or settled already
		}
		best := it.id
		if best == dst {
			break
		}
		s.done = true
		// Valley-free constraint: a stub AS may not be crossed. If best
		// was entered from a different AS, it may only forward within its
		// own AS. The source node and ASN-0 nodes are unrestricted.
		uASN := n.nodes[best].ASN
		restricted := false
		if uASN != 0 && !n.transitAS[uASN] && best != src {
			prevASN := n.nodes[s.prev].ASN
			restricted = prevASN != uASN
		}
		for _, e := range n.adj[best] {
			if restricted && n.nodes[e.to].ASN != uASN {
				continue
			}
			c := s.cost + e.link.TotalDelayMs() + n.nodes[e.to].ProcDelayMs
			h := s.hops + 1
			t := &states[e.to]
			if !t.seen || c < t.cost || (c == t.cost && h < t.hops) {
				*t = routeState{cost: c, hops: h, prev: best, via: e.link, seen: true}
				heap.Push(&pq, pqItem{cost: c, hops: h, id: e.to})
			}
		}
	}
	if !states[dst].seen {
		return nil, fmt.Errorf("netsim: no route %s -> %s", n.nodes[src].Name, n.nodes[dst].Name)
	}
	// Reconstruct.
	var revNodes []Node
	var revLinks []Link
	at := dst
	for at != src {
		revNodes = append(revNodes, n.nodes[at])
		revLinks = append(revLinks, states[at].via)
		at = states[at].prev
	}
	revNodes = append(revNodes, n.nodes[src])
	p := &Path{
		Nodes: make([]Node, 0, len(revNodes)),
		Links: make([]Link, 0, len(revLinks)),
	}
	for i := len(revNodes) - 1; i >= 0; i-- {
		p.Nodes = append(p.Nodes, revNodes[i])
	}
	for i := len(revLinks) - 1; i >= 0; i-- {
		p.Links = append(p.Links, revLinks[i])
	}
	return p, nil
}

// RTTms samples a round-trip time over the path: twice the one-way delay
// with per-link jitter applied, inflated by the current load model's
// queueing term. Safe for concurrent use given a per-goroutine Source.
func (n *Network) RTTms(p *Path, src *rng.Source) float64 {
	var d float64
	for _, l := range p.Links {
		d += src.Jitter(l.TotalDelayMs(), l.JitterFrac)
	}
	for _, node := range p.Nodes {
		d += src.Jitter(node.ProcDelayMs, 0.3)
	}
	return 2 * d * queueInflation(n.loadFactor())
}

// ConcatPaths joins consecutive path segments into one path. Each
// segment must start at the node the previous segment ended at. It is
// how sessions compose their pinned private leg (UE → assigned PGW) with
// the routed public leg (PGW → target), mirroring the fact that tunneled
// traffic cannot pick its breakout.
func ConcatPaths(segments ...*Path) (*Path, error) {
	var out *Path
	for _, seg := range segments {
		if seg == nil || len(seg.Nodes) == 0 {
			return nil, fmt.Errorf("netsim: empty path segment")
		}
		if out == nil {
			out = &Path{
				Nodes: append([]Node(nil), seg.Nodes...),
				Links: append([]Link(nil), seg.Links...),
			}
			continue
		}
		if out.Nodes[len(out.Nodes)-1].ID != seg.Nodes[0].ID {
			return nil, fmt.Errorf("netsim: discontiguous segments (%s -> %s)",
				out.Nodes[len(out.Nodes)-1].Name, seg.Nodes[0].Name)
		}
		out.Nodes = append(out.Nodes, seg.Nodes[1:]...)
		out.Links = append(out.Links, seg.Links...)
	}
	if out == nil {
		return nil, fmt.Errorf("netsim: no segments")
	}
	return out, nil
}
