package walsink

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"roamsim/internal/obs"
	"roamsim/internal/wire"
)

// fillSegments appends batches until the WAL holds at least minSegs
// segments, returning everything appended.
func fillSegments(t *testing.T, s *Sink, minSegs int) []wire.Result {
	t.Helper()
	var want []wire.Result
	for b := 0; ; b++ {
		if n, _ := s.Segments(); n >= minSegs {
			return want
		}
		batch := mkResults(b, 4)
		s.Append(batch)
		want = append(want, batch...)
		if err := s.Err(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCompactMergesHead(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s, err := Open(dir, Options{SegmentBytes: 512, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	want := fillSegments(t, s, 5)
	before, beforeBytes := s.Segments()

	st, err := s.Compact(s.Len())
	if err != nil {
		t.Fatal(err)
	}
	if st.Sources != before-1 {
		t.Fatalf("Sources = %d, want %d (all sealed segments)", st.Sources, before-1)
	}
	if st.Records == 0 || st.InBytes == 0 || st.OutBytes == 0 {
		t.Fatalf("empty stats: %+v", st)
	}
	if after, _ := s.Segments(); after != 2 {
		t.Fatalf("segments after compact = %d, want 2 (compacted head + active)", after)
	}
	if got := s.Retired(); got != st.Sources {
		t.Fatalf("Retired = %d, want %d", got, st.Sources)
	}
	if got := s.Len(); got != len(want) {
		t.Fatalf("Len = %d, want %d — compaction must not drop records", got, len(want))
	}
	if got := collect(t, s, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay after compact diverged")
	}
	// Cursor replay into the middle still works across the seam.
	mid := len(want) / 2
	if got := collect(t, s, mid); !reflect.DeepEqual(got, want[mid:]) {
		t.Fatalf("replay from %d after compact diverged", mid)
	}

	// Appends continue, and a reopen sees one compacted + live tail.
	extra := mkResults(99, 4)
	s.Append(extra)
	want = append(want, extra...)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := collect(t, s2, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay after reopen diverged")
	}
	if n, b := s2.Segments(); n > before || b > beforeBytes+int64(len(extra)*256) {
		t.Fatalf("compaction did not bound the log: %d segments, %d bytes", n, b)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "walsink_compactions_total 1") {
		t.Fatalf("missing compaction metric:\n%s", buf.String())
	}
}

func TestCompactKeepCursorBounds(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := fillSegments(t, s, 6)

	// A keepCursor inside segment 2 must leave segments 2+ untouched.
	s.mu.Lock()
	segs := append([]segment(nil), s.segs...)
	s.mu.Unlock()
	keep := segs[2].first + 1
	st, err := s.Compact(keep)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sources != 2 {
		t.Fatalf("Sources = %d, want 2 (only segments wholly below keepCursor)", st.Sources)
	}
	if got := collect(t, s, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay after bounded compact diverged")
	}

	// keepCursor 0: nothing eligible.
	if st, err := s.Compact(0); err != nil || st.Sources != 0 {
		t.Fatalf("Compact(0) = %+v, %v; want no-op", st, err)
	}

	// Second full compaction folds the compacted head plus the newly
	// sealed segments into a fresh compacted segment.
	st, err = s.Compact(s.Len())
	if err != nil {
		t.Fatal(err)
	}
	if st.Sources < 2 {
		t.Fatalf("recompaction Sources = %d, want >= 2 (compacted head + sealed tail)", st.Sources)
	}
	if got := collect(t, s, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay after recompaction diverged")
	}

	// And compacting a lone compacted head again is a no-op.
	if st, err := s.Compact(s.Len()); err != nil {
		t.Fatal(err)
	} else if n, _ := s.Segments(); n == 2 && st.Sources != 0 {
		t.Fatalf("re-wrapping a lone compacted head should be a no-op, got %+v", st)
	}
}

// TestCompactionCrashRecovery is the satellite torn-compaction test:
// the process dies at each crash stage of the protocol — after writing
// wal-compact.tmp, and in the torn window between renaming the
// compacted segment into place and retiring the sources — and a reopen
// must yield the exact original sequence with zero duplicates.
func TestCompactionCrashRecovery(t *testing.T) {
	for _, stage := range CompactStages {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			crash := stage
			s, err := Open(dir, Options{
				SegmentBytes: 512,
				CompactCrash: func(at string) bool { return at == crash },
			})
			if err != nil {
				t.Fatal(err)
			}
			want := fillSegments(t, s, 5)

			if _, err := s.Compact(s.Len()); !errors.Is(err, ErrCompactCrashed) {
				t.Fatalf("Compact = %v, want ErrCompactCrashed", err)
			}
			// The live sink is untouched by the aborted compaction: it
			// still appends and replays off its pre-compaction segments.
			extra := mkResults(77, 4)
			s.Append(extra)
			if err := s.Err(); err != nil {
				t.Fatal(err)
			}
			want = append(want, extra...)
			if got := collect(t, s, 0); !reflect.DeepEqual(got, want) {
				t.Fatalf("live replay after aborted compact diverged")
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			// The "process" died: reopen over the torn on-disk state.
			s2, err := Open(dir, Options{SegmentBytes: 512})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			got := collect(t, s2, 0)
			if len(got) != len(want) {
				t.Fatalf("recovered %d results, want %d (no loss, no duplicates)", len(got), len(want))
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("recovered sequence diverged from original")
			}
			if _, err := os.Stat(filepath.Join(dir, compactTmpName)); !os.IsNotExist(err) {
				t.Fatalf("stray %s survived recovery", compactTmpName)
			}
			// Recovery resolved the torn state: no source segment may
			// coexist with a compacted segment covering its number.
			assertNoOverlaps(t, dir)

			// Recovery is idempotent and the resolved log compacts fine.
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
			s3, err := Open(dir, Options{SegmentBytes: 512})
			if err != nil {
				t.Fatal(err)
			}
			defer s3.Close()
			if _, err := s3.Compact(s3.Len()); err != nil {
				t.Fatal(err)
			}
			if got := collect(t, s3, 0); !reflect.DeepEqual(got, want) {
				t.Fatalf("replay after recovery + compact diverged")
			}
		})
	}
}

func assertNoOverlaps(t *testing.T, dir string) {
	t.Helper()
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	prevB := -1
	for _, name := range names {
		a, b, _, ok := segRange(name)
		if !ok {
			t.Fatalf("unparseable segment %s", name)
		}
		if a <= prevB {
			t.Fatalf("overlapping segments on disk: %v", names)
		}
		prevB = b
	}
}

// TestCompactTornArtifactPrefersSources: a torn compacted segment whose
// sources are all intact is a failed-compaction artifact — recovery
// must drop it and keep the sources.
func TestCompactTornArtifactPrefersSources(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	want := fillSegments(t, s, 4)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Fake a crash that left a garbage compacted segment next to the
	// intact sources 1..3.
	bad := filepath.Join(dir, compactedName(1, 3))
	if err := os.WriteFile(bad, []byte("not a wal segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := collect(t, s2, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay after artifact recovery diverged")
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatalf("corrupt artifact %s survived recovery", bad)
	}
}

// TestCompactCorruptWithoutSourcesRefused: once the sources are gone, a
// damaged compacted segment is unrecoverable data loss and Open must
// refuse it rather than silently replay a truncated log.
func TestCompactCorruptWithoutSourcesRefused(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	fillSegments(t, s, 4)
	if _, err := s.Compact(s.Len()); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	comp := s.segs[0].name
	s.mu.Unlock()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte in the middle of the compacted segment.
	path := filepath.Join(dir, comp)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a damaged compacted segment with no sources left")
	}
}

// TestCompactConcurrentReplay races appends and replays against a
// compaction; run under -race this is the reader-fence regression test.
func TestCompactConcurrentReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillSegments(t, s, 5)
	base := s.Len()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		for b := 100; ; b++ {
			select {
			case <-stop:
				return
			default:
			}
			s.Append(mkResults(b, 2))
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			n := 0
			if _, err := s.Replay(0, func(wire.Result) error { n++; return nil }); err != nil {
				t.Errorf("concurrent replay: %v", err)
				return
			}
			if n < base {
				t.Errorf("concurrent replay saw %d results, want >= %d", n, base)
				return
			}
		}
	}()
	for i := 0; i < 5; i++ {
		if _, err := s.Compact(s.Len()); err != nil {
			t.Errorf("compact %d: %v", i, err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestSegRange(t *testing.T) {
	cases := []struct {
		name      string
		a, b      int
		compacted bool
		ok        bool
	}{
		{segName(7), 7, 7, false, true},
		{compactedName(1, 4), 1, 4, true, true},
		{compactedName(3, 3), 3, 3, true, true},
		{"wal-junk.seg", 0, 0, false, false},
		{fmt.Sprintf("wal-%08d-%08d.seg", 9, 2), 0, 0, false, false}, // inverted range
	}
	for _, c := range cases {
		a, b, compacted, ok := segRange(c.name)
		if a != c.a || b != c.b || compacted != c.compacted || ok != c.ok {
			t.Errorf("segRange(%q) = %d,%d,%v,%v; want %d,%d,%v,%v",
				c.name, a, b, compacted, ok, c.a, c.b, c.compacted, c.ok)
		}
	}
}
