// Package walsink is a crash-recoverable result sink for the AmiGo
// control plane: an append-only write-ahead log of uploaded result
// batches, written as length-prefixed internal/wire frames with a
// per-record CRC32 trailer, rotated into size-bounded segment files,
// and fsynced in batches. A control shard that dies mid-campaign loses
// its in-memory registry and queues but never its accepted results —
// Open truncates a torn tail, Replay streams every durable record back
// out by cursor, and fleet.Ingest rebuilds the byte-identical dataset
// from the replay.
//
// # Record format
//
//	offset  bytes  field
//	0       8      wire frame header (magic 'R''3', version, MsgResults, payload len)
//	8       N      MsgResults payload (uvarint record count + tagged records)
//	8+N     4      CRC32 (IEEE, big-endian) over the preceding 8+N bytes
//
// One Append call writes one record. Reusing the wire framing means the
// WAL shares the fuzz-hardened strict decoder with the v3 protocol: a
// record either round-trips byte-identically or is rejected.
//
// # Segments and recovery
//
// Records append to the newest segment file (wal-00000001.seg,
// wal-00000002.seg, ...); a record that would push the active segment
// past SegmentBytes rotates to a fresh one first. On Open the segments
// are scanned in order: every record's CRC and payload decode are
// verified, a torn or corrupt tail in the FINAL segment is truncated
// away (the crash case: a record half-written when the process died),
// and corruption in any earlier segment is refused as an error —
// mid-log damage means lost data and must not be silently skipped.
// Replay never yields a record past the first corruption.
//
// Compact (see compact.go) bounds the segment count for long campaigns:
// it rewrites the fully-replayed head of the log into one compacted
// segment (wal-<first>-<last>.seg) with the identical result sequence
// and retires the originals, crash-safely at every step.
//
// walsink.Sink implements amigo.Sink and amigo.CursorSink, so it drops
// into the server behind WithSink and the paged /admin/results route
// keeps working against the on-disk log.
package walsink

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"roamsim/internal/obs"
	"roamsim/internal/wire"
)

const (
	segPrefix = "wal-"
	segSuffix = ".seg"
	crcLen    = 4

	// DefaultSegmentBytes is the rotation threshold (4 MiB): large
	// enough that a fleet campaign writes a handful of segments, small
	// enough that Replay's per-segment read buffer stays modest.
	DefaultSegmentBytes = 4 << 20
	// DefaultSyncBytes is the fsync batching threshold (256 KiB of
	// unsynced appends); rotation and Close always sync regardless.
	DefaultSyncBytes = 256 << 10

	// sincePage bounds how many results one Since call returns, so
	// admin pagination over a large on-disk log reads bounded chunks
	// instead of the whole tail per page.
	sincePage = 5000
)

// Options configures a Sink; the zero value means defaults.
type Options struct {
	// SegmentBytes is the rotation threshold (default 4 MiB). A single
	// record larger than the threshold still gets written — it just
	// occupies a segment (almost) alone.
	SegmentBytes int
	// SyncBytes batches fsyncs: the file is synced once at least this
	// many bytes have been appended since the last sync (default
	// 256 KiB). 1 syncs every append.
	SyncBytes int
	// Obs, when set, records WAL metrics (segment count/bytes, records,
	// appends, fsyncs and fsync latency) under the given extra labels —
	// the sharded fleet passes a shard index label so per-shard WALs
	// stay distinct series in one registry.
	Obs    *obs.Registry
	Labels []obs.Label
	// CompactCrash, when set, is consulted at each compaction crash
	// stage (CompactTmpWritten, CompactRenamed); returning true aborts
	// Compact right there with ErrCompactCrashed, leaving the on-disk
	// state exactly as a process kill at that instant would. The chaos
	// kill-mid-compaction fault injects through this hook.
	CompactCrash func(stage string) bool
}

// segment is one WAL file's metadata.
type segment struct {
	name  string // file name within dir
	first int    // global cursor of this segment's first result
	count int    // results in this segment
	size  int64  // committed bytes (records fully written and accounted)
}

// Sink is the WAL. It is safe for concurrent use: the server serializes
// Append via its drain lock anyway, but Since/Replay may run while
// another goroutine appends.
type Sink struct {
	dir  string
	opts Options

	// rd fences segment-file retirement against readers: Replay holds
	// it shared for the whole streaming read, Compact holds it
	// exclusive while unlinking retired sources and swapping the
	// segment list. Lock order: rd before mu; mu alone is always fine.
	rd sync.RWMutex

	mu         sync.Mutex
	segs       []segment // guarded by mu
	f          *os.File  // active (last) segment, append-only; guarded by mu
	nextSeg    int       // next segment file number; guarded by mu
	total      int       // results across all segments; guarded by mu
	unsynced   int64     // bytes appended since the last fsync; guarded by mu
	ebuf       []byte    // encode scratch; guarded by mu
	err        error     // first unrecoverable I/O error; guarded by mu
	closed     bool      // guarded by mu
	compacting bool      // a Compact is in flight; guarded by mu
	retired    int       // source segments compacted away; guarded by mu

	met metrics
}

type metrics struct {
	appends        *obs.Counter
	records        *obs.Counter
	fsyncs         *obs.Counter
	errors         *obs.Counter
	compactions    *obs.Counter
	compactRetired *obs.Counter
	compactInB     *obs.Counter
	compactOutB    *obs.Counter
	fsyncMs        *obs.Histogram
}

// Open opens (or creates) the WAL in dir, scanning existing segments,
// truncating a torn tail in the final segment, and positioning for
// append. Corruption anywhere before the final segment's tail is an
// error: it means durable records were damaged, which replay must
// refuse to paper over.
func Open(dir string, opts Options) (*Sink, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SyncBytes <= 0 {
		opts.SyncBytes = DefaultSyncBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("walsink: %w", err)
	}
	names, err := resolveSegments(dir)
	if err != nil {
		return nil, err
	}
	s := &Sink{dir: dir, opts: opts, nextSeg: 1}
	sc := scanner{dec: wire.NewDecoder()}
	cursor := 0
	for i, name := range names {
		path := filepath.Join(dir, name)
		count, valid, clean, err := sc.scan(path)
		if err != nil {
			return nil, err
		}
		if !clean {
			if i != len(names)-1 {
				return nil, fmt.Errorf("walsink: segment %s is corrupt mid-log; only the final segment may carry a torn tail", name)
			}
			if isCompacted(name) {
				// A compacted segment is written whole and renamed into
				// place after an fsync — it can never carry a torn
				// tail. Damage here is real data loss, not a crash
				// artifact, and truncation would silently drop records.
				return nil, fmt.Errorf("walsink: compacted segment %s is corrupt; durable records were damaged", name)
			}
			if err := os.Truncate(path, valid); err != nil {
				return nil, fmt.Errorf("walsink: truncating torn tail of %s: %w", name, err)
			}
		}
		s.segs = append(s.segs, segment{name: name, first: cursor, count: count, size: valid})
		cursor += count
		if _, b, _, ok := segRange(name); ok && b >= s.nextSeg {
			s.nextSeg = b + 1
		}
	}
	s.total = cursor
	if len(s.segs) == 0 || isCompacted(s.segs[len(s.segs)-1].name) {
		// No segments yet, or the newest file is a sealed compacted
		// segment: appends need a fresh plain segment.
		if err := s.addSegmentLocked(); err != nil {
			return nil, err
		}
	} else {
		f, err := os.OpenFile(filepath.Join(dir, s.segs[len(s.segs)-1].name), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("walsink: %w", err)
		}
		s.f = f
	}
	s.initObs()
	return s, nil
}

func (s *Sink) initObs() {
	reg, labels := s.opts.Obs, s.opts.Labels
	s.met = metrics{
		appends:        reg.Counter("walsink_appends_total", labels...),
		records:        reg.Counter("walsink_records_total", labels...),
		fsyncs:         reg.Counter("walsink_fsyncs_total", labels...),
		errors:         reg.Counter("walsink_errors_total", labels...),
		compactions:    reg.Counter("walsink_compactions_total", labels...),
		compactRetired: reg.Counter("walsink_compact_retired_segments_total", labels...),
		compactInB:     reg.Counter("walsink_compact_in_bytes_total", labels...),
		compactOutB:    reg.Counter("walsink_compact_out_bytes_total", labels...),
		fsyncMs:        reg.Histogram("walsink_fsync_ms", labels...),
	}
	reg.GaugeFunc("walsink_segments", func() float64 {
		n, _ := s.Segments()
		return float64(n)
	}, labels...)
	reg.GaugeFunc("walsink_bytes", func() float64 {
		_, b := s.Segments()
		return float64(b)
	}, labels...)
}

// segmentNames lists the WAL segment files in dir, in log order (the
// zero-padded numbering makes lexicographic order numeric).
func segmentNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("walsink: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

func segName(n int) string { return fmt.Sprintf("%s%08d%s", segPrefix, n, segSuffix) }

func segNumber(name string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(name, segPrefix+"%08d"+segSuffix, &n); err != nil {
		return 0, false
	}
	return n, true
}

// Append implements amigo.Sink: it encodes the batch as one wire
// MsgResults frame + CRC32 trailer and appends it to the active
// segment, rotating and fsync-batching as configured. The Sink
// interface carries no error return, so I/O failures latch into Err()
// and subsequent appends become no-ops — a WAL that cannot write is a
// dead shard, and the operator must see it (walsink_errors_total)
// rather than silently losing tail results.
func (s *Sink) Append(batch []wire.Result) {
	if len(batch) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil || s.closed {
		s.met.errors.Add(1)
		return
	}
	s.ebuf = wire.AppendResults(s.ebuf[:0], batch)
	var crcb [crcLen]byte
	binary.BigEndian.PutUint32(crcb[:], crc32.ChecksumIEEE(s.ebuf))
	s.ebuf = append(s.ebuf, crcb[:]...)
	recLen := int64(len(s.ebuf))

	active := &s.segs[len(s.segs)-1]
	if active.size > 0 && active.size+recLen > int64(s.opts.SegmentBytes) {
		if err := s.rotateLocked(); err != nil {
			s.failLocked(err)
			return
		}
		active = &s.segs[len(s.segs)-1]
	}
	if _, err := s.f.Write(s.ebuf); err != nil {
		// The tail may be half-written; the next Open truncates it.
		s.failLocked(fmt.Errorf("walsink: append: %w", err))
		return
	}
	active.size += recLen
	active.count += len(batch)
	s.total += len(batch)
	s.unsynced += recLen
	s.met.appends.Add(1)
	s.met.records.Add(int64(len(batch)))
	if s.unsynced >= int64(s.opts.SyncBytes) {
		if err := s.syncLocked(); err != nil {
			s.failLocked(err)
		}
	}
}

func (s *Sink) failLocked(err error) {
	if s.err == nil {
		s.err = err
	}
	s.met.errors.Add(1)
}

// rotateLocked syncs and closes the active segment and opens the next.
func (s *Sink) rotateLocked() error {
	if err := s.syncLocked(); err != nil {
		return err
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("walsink: rotate: %w", err)
	}
	return s.addSegmentLocked()
}

// addSegmentLocked creates the next numbered segment file and makes it
// active.
func (s *Sink) addSegmentLocked() error {
	name := segName(s.nextSeg)
	f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("walsink: creating segment: %w", err)
	}
	s.nextSeg++
	s.f = f
	s.segs = append(s.segs, segment{name: name, first: s.total})
	return nil
}

func (s *Sink) syncLocked() error {
	if s.unsynced == 0 {
		return nil
	}
	//lint:allow wallclock fsync latency is operator telemetry (a histogram), never an input to any dataset
	start := time.Now()
	err := s.f.Sync()
	//lint:allow wallclock see above: measuring a real disk sync requires the real clock
	s.met.fsyncMs.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	if err != nil {
		return fmt.Errorf("walsink: fsync: %w", err)
	}
	s.met.fsyncs.Add(1)
	s.unsynced = 0
	return nil
}

// Sync forces an fsync of any unsynced appends.
func (s *Sink) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if s.closed {
		return nil
	}
	if err := s.syncLocked(); err != nil {
		s.failLocked(err)
		return err
	}
	return nil
}

// Close syncs and closes the active segment. The log remains valid on
// disk; a later Open resumes appending where Close left off.
func (s *Sink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	s.closed = true
	syncErr := s.syncLocked()
	closeErr := s.f.Close()
	if s.err != nil {
		return s.err
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// Err returns the first unrecoverable I/O error, if any. A non-nil Err
// means appends after the error were dropped and the shard must be
// treated as failed.
func (s *Sink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Len implements amigo.CursorSink: the cursor one past the newest
// durable result.
func (s *Sink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Segments reports the current segment count and total committed bytes
// (the WAL size on disk, excluding any torn tail).
func (s *Sink) Segments() (n int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, seg := range s.segs {
		bytes += seg.size
	}
	return len(s.segs), bytes
}

// errPageFull stops a Replay early once Since has filled its page.
var errPageFull = errors.New("walsink: page full")

// Since implements amigo.CursorSink: it returns up to sincePage results
// at positions >= cursor, read back from disk, plus the cursor one past
// the last returned result. Decoded payloads are backed by the
// per-segment read buffer, which the caller exclusively owns.
func (s *Sink) Since(cursor int) ([]wire.Result, int) {
	if cursor < 0 {
		cursor = 0
	}
	if n := s.Len(); cursor > n {
		cursor = n // clamp out-of-range cursors the way MemorySink does
	}
	var out []wire.Result
	next, err := s.Replay(cursor, func(r wire.Result) error {
		// Check the bound before consuming: Replay only counts results
		// fn accepted, so next must cover exactly the appended records
		// or a full page would hand back a cursor one short and the
		// boundary result would be re-read as a duplicate.
		if len(out) >= sincePage {
			return errPageFull
		}
		out = append(out, r)
		return nil
	})
	if err != nil && !errors.Is(err, errPageFull) {
		// CursorSink has no error channel; surface via metrics and
		// return the prefix read so far — the caller's cursor loop
		// stops advancing rather than spinning.
		s.mu.Lock()
		s.met.errors.Add(1)
		s.mu.Unlock()
	}
	return out, next
}

// Replay streams every durable result at positions >= cursor through fn
// in log order and returns the cursor one past the last result yielded.
// It reads only committed bytes, so it is safe concurrently with
// Append, and it holds the retirement lock shared so a concurrent
// Compact cannot unlink a segment out from under the stream. A non-nil
// error from fn aborts the replay and is returned. Replay never yields
// a record past a corruption: committed bytes are re-verified (CRC +
// strict decode) on the way out, and the first mismatch stops the
// stream with an error.
func (s *Sink) Replay(cursor int, fn func(wire.Result) error) (int, error) {
	if cursor < 0 {
		cursor = 0
	}
	s.rd.RLock()
	defer s.rd.RUnlock()
	s.mu.Lock()
	segs := append([]segment(nil), s.segs...)
	s.mu.Unlock()

	dec := wire.NewDecoder()
	var scratch []wire.Result
	next := cursor
	for _, seg := range segs {
		if seg.count == 0 || seg.first+seg.count <= cursor {
			continue
		}
		data, err := readCommitted(filepath.Join(s.dir, seg.name), seg.size)
		if err != nil {
			return next, err
		}
		idx := seg.first
		off := 0
		for off < len(data) {
			_, payload, tot, err := verifyRecord(data[off:])
			if err != nil {
				return next, fmt.Errorf("walsink: %s at offset %d: %w", seg.name, off, err)
			}
			scratch, err = dec.Results(payload, scratch[:0])
			if err != nil {
				return next, fmt.Errorf("walsink: %s at offset %d: %w", seg.name, off, err)
			}
			for i := range scratch {
				if idx >= cursor {
					if err := fn(scratch[i]); err != nil {
						return next, err
					}
					next++
				}
				idx++
			}
			off += tot
		}
	}
	return next, nil
}

// verifyRecord parses and CRC-checks one record at the head of data,
// returning the frame bytes (header+payload), the payload alone, and
// the total record length consumed.
func verifyRecord(data []byte) (frame, payload []byte, tot int, err error) {
	if len(data) < wire.HeaderLen+crcLen {
		return nil, nil, 0, errors.New("torn record header")
	}
	h, err := wire.ParseHeader(data[:wire.HeaderLen])
	if err != nil {
		return nil, nil, 0, err
	}
	if h.Type != wire.MsgResults {
		return nil, nil, 0, fmt.Errorf("unexpected frame type 0x%02x in WAL", h.Type)
	}
	tot = wire.HeaderLen + int(h.N) + crcLen
	if len(data) < tot {
		return nil, nil, 0, errors.New("torn record body")
	}
	frame = data[:wire.HeaderLen+int(h.N)]
	want := binary.BigEndian.Uint32(data[wire.HeaderLen+int(h.N) : tot])
	if crc32.ChecksumIEEE(frame) != want {
		return nil, nil, 0, errors.New("record CRC mismatch")
	}
	return frame, frame[wire.HeaderLen:], tot, nil
}

// readCommitted reads exactly the first size bytes of path — the
// committed prefix; a concurrent appender may have written more.
func readCommitted(path string, size int64) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("walsink: %w", err)
	}
	defer f.Close()
	buf := make([]byte, size)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, fmt.Errorf("walsink: reading %s: %w", filepath.Base(path), err)
	}
	return buf, nil
}

// scanner validates segments at Open time.
type scanner struct {
	dec     *wire.Decoder
	scratch []wire.Result
}

// scan walks a segment file record by record. It returns the number of
// results in the valid prefix, the byte length of that prefix, and
// clean=true when the file ends exactly on a record boundary. Any CRC
// mismatch, decode failure, or short tail ends the valid prefix there
// (clean=false); the caller decides whether that is a truncatable torn
// tail (final segment) or unacceptable mid-log corruption.
func (sc *scanner) scan(path string) (count int, valid int64, clean bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, false, fmt.Errorf("walsink: %w", err)
	}
	off := 0
	for off < len(data) {
		_, payload, tot, err := verifyRecord(data[off:])
		if err != nil {
			return count, int64(off), false, nil
		}
		sc.scratch, err = sc.dec.Results(payload, sc.scratch[:0])
		if err != nil {
			return count, int64(off), false, nil
		}
		count += len(sc.scratch)
		off += tot
	}
	return count, int64(off), true, nil
}
