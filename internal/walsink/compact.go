package walsink

// WAL compaction: Compact rewrites the log's fully-replayed head
// segments into a single compacted segment and retires the originals,
// bounding the file count (and the per-frame overhead) for campaigns
// that outlive SegmentBytes × N. Compaction never drops or reorders a
// result — the compacted segment carries the byte-equivalent record
// stream re-batched into dense canonical frames with fresh CRCs, so
// Replay before and after a compaction yields the identical sequence.
//
// # Crash safety
//
// The rewrite follows the classic tmp → fsync → rename → retire
// protocol, and every intermediate state is recoverable at Open:
//
//	crash point                     disk state                recovery
//	while writing wal-compact.tmp   tmp + sources             delete tmp, use sources
//	tmp durable, before rename      tmp + sources             delete tmp, use sources
//	after rename, before retire     compacted + sources       verify compacted, retire sources
//	mid-retire                      compacted + some sources  retire remaining sources
//	after retire                    compacted only            nothing to do
//
// The compacted segment's name, wal-<first>-<last>.seg, is the
// retention tombstone: it records exactly which source segment numbers
// it replaced, so a reopen can tell a crash leftover (a source whose
// number the compacted range covers) from live log tail. '-' sorts
// before '.', so a compacted segment orders immediately before the
// plain segment carrying its first source number — lexicographic
// directory order remains log order.
//
// If the compacted segment itself fails verification while every
// source it names is still present and intact (their ranges tile the
// compacted range), the sources win and the artifact is deleted: the
// rename happened but the artifact is not trustworthy, and the intact
// sources carry the same records. Once any source is gone, a damaged
// compacted segment is refused as mid-log corruption — durable data
// was lost and replay must not paper over it.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"roamsim/internal/wire"
)

const (
	// compactTmpName is the scratch file a compaction builds before the
	// atomic rename. At most one compaction runs per Sink, and a stray
	// tmp (a pre-rename crash) is deleted at Open.
	compactTmpName = "wal-compact.tmp"

	// compactBatch is how many results one compacted frame carries:
	// large enough to amortize the 12-byte frame+CRC overhead, small
	// enough that a frame stays far below the wire decoder's limits.
	compactBatch = 1024
)

// Compaction crash stages, in protocol order — the points where the
// chaos kill-mid-compaction fault can abort a Compact (see
// Options.CompactCrash).
const (
	// CompactTmpWritten: wal-compact.tmp is durable; the rename has not
	// happened. Recovery discards the tmp and keeps the sources.
	CompactTmpWritten = "tmp-written"
	// CompactRenamed: the compacted segment is live on disk and the
	// source segments have not been retired — the torn window the
	// crash-recovery tests target. Recovery verifies the compacted
	// segment and retires the covered sources.
	CompactRenamed = "renamed"
)

// CompactStages lists the injectable crash points in protocol order.
var CompactStages = []string{CompactTmpWritten, CompactRenamed}

// ErrCompactCrashed is returned by Compact when Options.CompactCrash
// aborted it at a crash stage. The sink's in-memory state still
// describes the pre-compaction segments (which remain on disk), so the
// live sink keeps appending and replaying correctly; the torn on-disk
// state is resolved by the next Open.
var ErrCompactCrashed = errors.New("walsink: compaction aborted at injected crash point")

// CompactStats reports what one Compact call did. A zero Sources means
// the call was a no-op (nothing eligible below keepCursor).
type CompactStats struct {
	Sources  int   // source segments merged and retired
	Records  int   // results rewritten into the compacted segment
	InBytes  int64 // committed bytes of the source segments
	OutBytes int64 // bytes of the compacted segment
}

// compactedName formats the compacted segment covering source segment
// numbers [a, b].
func compactedName(a, b int) string {
	return fmt.Sprintf("%s%08d-%08d%s", segPrefix, a, b, segSuffix)
}

// segRange parses a segment file name into the source-number range it
// covers: plain wal-N.seg covers [N,N]; compacted wal-A-B.seg covers
// [A,B].
func segRange(name string) (a, b int, compacted, ok bool) {
	if _, err := fmt.Sscanf(name, segPrefix+"%08d-%08d"+segSuffix, &a, &b); err == nil && a <= b {
		return a, b, true, true
	}
	if n, ok := segNumber(name); ok {
		return n, n, false, true
	}
	return 0, 0, false, false
}

// Compact merges the log's head segments — every sealed segment whose
// results all lie below keepCursor — into one compacted segment and
// retires the originals. keepCursor is the caller's replay watermark:
// segments at or above it may still be paged record-by-record and are
// left untouched; pass Len() to compact everything sealed. The active
// (append) segment is never a source. Compact is safe concurrently
// with Append, Since and Replay; concurrent Compact calls coalesce
// (the second returns a zero CompactStats).
func (s *Sink) Compact(keepCursor int) (CompactStats, error) {
	var st CompactStats
	s.mu.Lock()
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return st, err
	}
	if s.closed {
		s.mu.Unlock()
		return st, errors.New("walsink: compact on closed sink")
	}
	if s.compacting {
		s.mu.Unlock()
		return st, nil
	}
	// Sources: the longest sealed prefix entirely below keepCursor.
	k := 0
	for k < len(s.segs)-1 && s.segs[k].first+s.segs[k].count <= keepCursor {
		k++
	}
	if k == 0 || (k == 1 && isCompacted(s.segs[0].name)) {
		// Nothing to merge: no eligible segment, or just the previous
		// compaction's output (re-wrapping it would be pure churn).
		s.mu.Unlock()
		return st, nil
	}
	sources := append([]segment(nil), s.segs[:k]...)
	s.compacting = true
	s.mu.Unlock()
	done := false
	defer func() {
		if !done {
			s.mu.Lock()
			s.compacting = false
			s.mu.Unlock()
		}
	}()

	firstNum, _, _, ok1 := segRange(sources[0].name)
	_, lastNum, _, ok2 := segRange(sources[len(sources)-1].name)
	if !ok1 || !ok2 {
		return st, fmt.Errorf("walsink: compact: unparseable segment name %q", sources[0].name)
	}
	for _, seg := range sources {
		st.Sources++
		st.Records += seg.count
		st.InBytes += seg.size
	}

	tmpPath := filepath.Join(s.dir, compactTmpName)
	outBytes, wrote, err := s.rewrite(tmpPath, sources)
	if err != nil {
		os.Remove(tmpPath)
		return st, err
	}
	if wrote != st.Records {
		os.Remove(tmpPath)
		return st, fmt.Errorf("walsink: compact: rewrote %d results, sources hold %d", wrote, st.Records)
	}
	st.OutBytes = outBytes
	if s.crashAt(CompactTmpWritten) {
		// Simulated process death: the durable tmp stays on disk (Open
		// deletes it); in-memory state still describes the sources.
		return st, ErrCompactCrashed
	}

	name := compactedName(firstNum, lastNum)
	if err := os.Rename(tmpPath, filepath.Join(s.dir, name)); err != nil {
		os.Remove(tmpPath)
		return st, fmt.Errorf("walsink: compact: %w", err)
	}
	if err := fsyncDir(s.dir); err != nil {
		return st, err
	}
	if s.crashAt(CompactRenamed) {
		// The torn window: compacted segment and sources coexist. The
		// live sink keeps using the sources (in-memory state untouched);
		// a reopen retires them against the compacted segment.
		return st, ErrCompactCrashed
	}

	// Retire the sources and swap the in-memory segment list. The
	// writer lock fences Replay/Since readers: a reader that snapshotted
	// the source segments finishes its file reads before any source is
	// unlinked. Removal sweeps every file the compacted range covers —
	// including stale artifacts of previously aborted compactions — not
	// just the recorded sources.
	s.rd.Lock()
	s.mu.Lock()
	newSeg := segment{name: name, first: sources[0].first, count: st.Records, size: st.OutBytes}
	s.segs = append([]segment{newSeg}, s.segs[k:]...)
	s.retired += len(sources)
	s.compacting = false
	done = true
	s.mu.Unlock()
	var removeErr error
	if names, err := segmentNames(s.dir); err != nil {
		removeErr = err
	} else {
		for _, old := range names {
			if old == name {
				continue
			}
			if a, b, _, ok := segRange(old); ok && firstNum <= a && b <= lastNum {
				if err := os.Remove(filepath.Join(s.dir, old)); err != nil && removeErr == nil {
					removeErr = fmt.Errorf("walsink: compact: retiring %s: %w", old, err)
				}
			}
		}
	}
	s.rd.Unlock()

	s.met.compactions.Add(1)
	s.met.compactRetired.Add(int64(st.Sources))
	s.met.compactInB.Add(st.InBytes)
	s.met.compactOutB.Add(st.OutBytes)
	if removeErr != nil {
		// A source that cannot be unlinked is the "renamed" crash state:
		// recoverable at the next Open, but the operator should see it.
		s.mu.Lock()
		s.met.errors.Add(1)
		s.mu.Unlock()
		return st, removeErr
	}
	return st, nil
}

// crashAt consults the injected crash hook, if any.
func (s *Sink) crashAt(stage string) bool {
	return s.opts.CompactCrash != nil && s.opts.CompactCrash(stage)
}

// rewrite streams the source segments' records into path, re-batched
// into dense frames of up to compactBatch results, and fsyncs the
// result. It returns the bytes written and the number of results
// rewritten. Sources are immutable sealed files, so no lock is needed
// to read them.
func (s *Sink) rewrite(path string, sources []segment) (int64, int, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, 0, fmt.Errorf("walsink: compact: %w", err)
	}
	defer f.Close()

	var (
		out   int64
		wrote int
		batch []wire.Result
		ebuf  []byte
	)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		ebuf = wire.AppendResults(ebuf[:0], batch)
		var crcb [crcLen]byte
		binary.BigEndian.PutUint32(crcb[:], crc32.ChecksumIEEE(ebuf))
		ebuf = append(ebuf, crcb[:]...)
		if _, err := f.Write(ebuf); err != nil {
			return fmt.Errorf("walsink: compact: %w", err)
		}
		out += int64(len(ebuf))
		wrote += len(batch)
		batch = batch[:0]
		return nil
	}
	dec := wire.NewDecoder()
	var scratch []wire.Result
	for _, seg := range sources {
		data, err := readCommitted(filepath.Join(s.dir, seg.name), seg.size)
		if err != nil {
			return 0, 0, err
		}
		off := 0
		for off < len(data) {
			_, payload, tot, err := verifyRecord(data[off:])
			if err != nil {
				return 0, 0, fmt.Errorf("walsink: compact: %s at offset %d: %w", seg.name, off, err)
			}
			scratch, err = dec.Results(payload, scratch[:0])
			if err != nil {
				return 0, 0, fmt.Errorf("walsink: compact: %s at offset %d: %w", seg.name, off, err)
			}
			// Decoded results alias data; batch may span segment files,
			// and each backing buffer stays reachable until flushed.
			for i := range scratch {
				batch = append(batch, scratch[i])
				if len(batch) >= compactBatch {
					if err := flush(); err != nil {
						return 0, 0, err
					}
				}
			}
			off += tot
		}
	}
	if err := flush(); err != nil {
		return 0, 0, err
	}
	if err := f.Sync(); err != nil {
		return 0, 0, fmt.Errorf("walsink: compact: fsync: %w", err)
	}
	return out, wrote, nil
}

// Retired reports how many source segments this Sink has compacted
// away since Open.
func (s *Sink) Retired() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retired
}

func isCompacted(name string) bool {
	_, _, compacted, ok := segRange(name)
	return ok && compacted
}

// fsyncDir makes a rename/unlink in dir durable.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("walsink: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("walsink: fsync dir: %w", err)
	}
	return nil
}

// resolveSegments lists dir's segment files, finishes or rolls back any
// compaction a previous process died in the middle of, and returns the
// surviving names in log order. A stray wal-compact.tmp (pre-rename
// crash) is deleted. For each compacted segment, every other file whose
// source-number range it covers is a retired leftover:
//
//   - compacted segment verifies clean → the leftovers are deleted
//     (completing the crashed retire step), unless intact leftovers
//     fully tile the range and disagree with it on record count — then
//     the artifact is deleted instead, because self-consistent sources
//     outrank an artifact that cannot match them;
//   - compacted segment is torn/corrupt and intact leftovers fully
//     tile its range → the artifact is deleted and the sources win;
//   - compacted segment is damaged and some source is already gone →
//     refused as mid-log corruption, exactly like a damaged plain
//     segment.
func resolveSegments(dir string) ([]string, error) {
	if err := os.Remove(filepath.Join(dir, compactTmpName)); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("walsink: removing stray %s: %w", compactTmpName, err)
	}
	names, err := segmentNames(dir)
	if err != nil {
		return nil, err
	}
	type entry struct {
		name      string
		a, b      int
		compacted bool
		valid     bool
		retired   bool
	}
	entries := make([]entry, len(names))
	anyCompacted := false
	for i, n := range names {
		a, b, c, ok := segRange(n)
		entries[i] = entry{name: n, a: a, b: b, compacted: c, valid: ok}
		anyCompacted = anyCompacted || (ok && c)
	}
	if !anyCompacted {
		return names, nil // fast path: nothing to resolve
	}

	// Process compacted segments widest-range first so a wide artifact
	// can retire a narrower one it superseded.
	order := make([]int, 0, len(entries))
	for i, e := range entries {
		if e.valid && e.compacted {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(x, y int) bool {
		ex, ey := entries[order[x]], entries[order[y]]
		if wx, wy := ex.b-ex.a, ey.b-ey.a; wx != wy {
			return wx > wy
		}
		return ex.a < ey.a
	})

	sc := scanner{dec: wire.NewDecoder()}
	for _, ci := range order {
		c := &entries[ci]
		if c.retired {
			continue
		}
		var covered []int
		for j := range entries {
			e := &entries[j]
			if j == ci || !e.valid || e.retired {
				continue
			}
			switch {
			case c.a <= e.a && e.b <= c.b:
				covered = append(covered, j)
			case e.b < c.a || c.b < e.a:
				// disjoint
			default:
				return nil, fmt.Errorf("walsink: segments %s and %s overlap partially", c.name, e.name)
			}
		}
		ccount, _, cclean, err := sc.scan(filepath.Join(dir, c.name))
		if err != nil {
			return nil, err
		}
		// Do the intact leftovers fully tile the compacted range, and
		// with how many records?
		sort.Slice(covered, func(x, y int) bool { return entries[covered[x]].a < entries[covered[y]].a })
		tiles, allClean, sum := len(covered) > 0, true, 0
		nextA := c.a
		for _, j := range covered {
			e := entries[j]
			if e.a != nextA {
				tiles = false
				break
			}
			n, _, clean, err := sc.scan(filepath.Join(dir, e.name))
			if err != nil {
				return nil, err
			}
			allClean = allClean && clean
			sum += n
			nextA = e.b + 1
		}
		tiles = tiles && nextA == c.b+1

		switch {
		case cclean && !(tiles && allClean && sum != ccount):
			for _, j := range covered {
				entries[j].retired = true
			}
		case tiles && allClean:
			// Torn artifact (or one contradicting intact sources): the
			// sources carry the data; drop the artifact.
			c.retired = true
		default:
			return nil, fmt.Errorf("walsink: compacted segment %s is corrupt and its sources are incomplete; durable records were damaged", c.name)
		}
	}

	var survivors []string
	prevB := -1
	prevValid := false
	for _, e := range entries {
		if e.retired {
			if err := os.Remove(filepath.Join(dir, e.name)); err != nil {
				return nil, fmt.Errorf("walsink: retiring %s: %w", e.name, err)
			}
			continue
		}
		if e.valid {
			if prevValid && e.a <= prevB {
				return nil, fmt.Errorf("walsink: segments overlap at %s", e.name)
			}
			prevB, prevValid = e.b, true
		}
		survivors = append(survivors, e.name)
	}
	return survivors, nil
}
