package walsink

import (
	"encoding/binary"
	"flag"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"roamsim/internal/wire"
)

var updateCorpus = flag.Bool("update-corpus", false, "rewrite the testdata/fuzz seed corpora from walCorpus()/compactCorpus()")

// walRecord encodes one on-disk WAL record: wire MsgResults frame plus
// the big-endian CRC32 trailer.
func walRecord(batch []wire.Result) []byte {
	rec := wire.AppendResults(nil, batch)
	var crcb [crcLen]byte
	binary.BigEndian.PutUint32(crcb[:], crc32.ChecksumIEEE(rec))
	return append(rec, crcb[:]...)
}

// walCorpus is the checked-in seed corpus for FuzzWALReplay: segment
// files exercising the recovery paths — clean logs, torn tails, flipped
// CRC and payload bytes, non-Results frames, and plain garbage.
func walCorpus() map[string][]byte {
	r1 := walRecord(mkResults(0, 2))
	r2 := walRecord(mkResults(1, 3))
	valid := append(append([]byte(nil), r1...), r2...)

	torn := append([]byte(nil), r1...)
	torn = append(torn, r2[:len(r2)/2]...) // crash mid-write of record 2

	flippedCRC := append(append([]byte(nil), r1...), r2...)
	flippedCRC[len(flippedCRC)-1] ^= 0xff // damage record 2's CRC trailer

	flippedPayload := append(append([]byte(nil), r1...), r2...)
	flippedPayload[len(r1)+wire.HeaderLen+3] ^= 0xff // damage record 2's payload

	// A MsgTasks frame with a valid CRC: right framing, wrong type.
	tasksFrame := wire.AppendTasks(nil, []wire.Task{{ID: 1, Kind: "speedtest", Config: "esim"}})
	var crcb [crcLen]byte
	binary.BigEndian.PutUint32(crcb[:], crc32.ChecksumIEEE(tasksFrame))
	wrongType := append(append([]byte(nil), r1...), append(tasksFrame, crcb[:]...)...)

	return map[string][]byte{
		"seed-valid-two-records": valid,
		"seed-torn-tail":         torn,
		"seed-flipped-crc":       flippedCRC,
		"seed-flipped-payload":   flippedPayload,
		"seed-wrong-type-frame":  wrongType,
		"seed-garbage":           []byte("\x00\x01\x02 definitely not a WAL segment \xff\xfe"),
		"seed-empty":             {},
	}
}

// FuzzWALReplay feeds arbitrary bytes to Open as a single segment file
// and pins the recovery invariants: Open never panics and never errors
// on a lone (hence final) segment, Replay yields exactly Len() results
// and never anything past the first corruption, and a second Open of
// the recovered log agrees with the first.
func FuzzWALReplay(f *testing.F) {
	for _, name := range sortedKeys(walCorpus()) {
		f.Add(walCorpus()[name])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, segName(1))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{})
		if err != nil {
			// A single segment is by definition final: any corruption is
			// a truncatable tail, so Open must always succeed.
			t.Fatalf("Open on single segment: %v", err)
		}
		count := 0
		next, err := s.Replay(0, func(r wire.Result) error {
			count++
			return nil
		})
		if err != nil {
			t.Fatalf("Replay over recovered log: %v", err)
		}
		if count != s.Len() || next != s.Len() {
			t.Fatalf("Replay yielded %d (cursor %d), Len says %d", count, next, s.Len())
		}
		// The recovered file must end exactly at the committed size.
		_, bytes := s.Segments()
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != bytes {
			t.Fatalf("file size %d != committed bytes %d after recovery", fi.Size(), bytes)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		// Reopen idempotence: recovery of a recovered log is a no-op.
		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		if s2.Len() != count {
			t.Fatalf("reopen Len = %d, first recovery yielded %d", s2.Len(), count)
		}
		s2.Close()
	})
}

// compactCorpus seeds FuzzCompactRecovery: contents for the compacted
// segment in the torn-compaction crash layout (compacted artifact and
// its intact sources coexisting on disk) — the faithful rewrite, a torn
// copy, a CRC flip, and garbage.
func compactCorpus() map[string][]byte {
	b1, b2 := mkResults(0, 2), mkResults(1, 3)
	faithful := walRecord(append(append([]wire.Result(nil), b1...), b2...))
	torn := append([]byte(nil), faithful[:len(faithful)/2]...)
	flipped := append([]byte(nil), faithful...)
	flipped[len(flipped)-1] ^= 0xff
	return map[string][]byte{
		"seed-faithful-rewrite": faithful,
		"seed-torn-artifact":    torn,
		"seed-flipped-crc":      flipped,
		"seed-garbage":          []byte("renamed but never fsynced?! \x00\xff"),
		"seed-empty":            {},
	}
}

// FuzzCompactRecovery drops arbitrary bytes into the compacted-segment
// slot of the torn-compaction crash layout — wal-00000001-00000002.seg
// next to its intact sources wal-00000001.seg / wal-00000002.seg and an
// active tail segment — and pins the resolution invariants: Open never
// panics and never errors (the intact sources always cover the range),
// Replay yields exactly Len() results, no overlapping segment files
// survive, and a second Open agrees with the first.
func FuzzCompactRecovery(f *testing.F) {
	for _, name := range sortedKeys(compactCorpus()) {
		f.Add(compactCorpus()[name])
	}
	b1, b2, b3 := mkResults(0, 2), mkResults(1, 3), mkResults(2, 1)
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		for i, batch := range [][]wire.Result{b1, b2, b3} {
			if err := os.WriteFile(filepath.Join(dir, segName(i+1)), walRecord(batch), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(filepath.Join(dir, compactedName(1, 2)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{})
		if err != nil {
			// The sources tile the artifact's range, so resolution must
			// always find a consistent log.
			t.Fatalf("Open on torn-compaction layout: %v", err)
		}
		count := 0
		if _, err := s.Replay(0, func(wire.Result) error { count++; return nil }); err != nil {
			t.Fatalf("Replay over resolved log: %v", err)
		}
		if count != s.Len() {
			t.Fatalf("Replay yielded %d, Len says %d", count, s.Len())
		}
		// Whichever side won, the tail segment's records survive, and
		// the head holds one generation, never both.
		if count < len(b3) || count > len(b1)+len(b2)+len(b3) {
			t.Fatalf("resolved log has %d results", count)
		}
		names, err := segmentNames(dir)
		if err != nil {
			t.Fatal(err)
		}
		prevB := -1
		for _, name := range names {
			if a, b, _, ok := segRange(name); ok {
				if a <= prevB {
					t.Fatalf("overlapping segments after resolution: %v", names)
				}
				prevB = b
			}
		}
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		if s2.Len() != count {
			t.Fatalf("reopen Len = %d, first resolution yielded %d", s2.Len(), count)
		}
		s2.Close()
	})
}

func sortedKeys(m map[string][]byte) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestFuzzCorpusUpToDate pins the checked-in seed corpora to
// walCorpus() and compactCorpus(). Run with -update-corpus to
// regenerate after changing the record format (which also means old
// WALs stop replaying — think twice).
func TestFuzzCorpusUpToDate(t *testing.T) {
	targets := map[string]map[string][]byte{
		"FuzzWALReplay":       walCorpus(),
		"FuzzCompactRecovery": compactCorpus(),
	}
	for target, corpus := range targets {
		dir := filepath.Join("testdata", "fuzz", target)
		if *updateCorpus {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			for name, data := range corpus {
				body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
				if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
		for _, name := range sortedKeys(corpus) {
			got, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatalf("missing corpus file (run go test -run TestFuzzCorpusUpToDate -update-corpus ./internal/walsink): %v", err)
			}
			want := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", corpus[name])
			if string(got) != want {
				t.Fatalf("corpus file %s/%s is stale; regenerate with -update-corpus", target, name)
			}
		}
	}
}
