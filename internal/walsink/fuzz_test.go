package walsink

import (
	"encoding/binary"
	"flag"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"roamsim/internal/wire"
)

var updateCorpus = flag.Bool("update-corpus", false, "rewrite testdata/fuzz/FuzzWALReplay from walCorpus()")

// walRecord encodes one on-disk WAL record: wire MsgResults frame plus
// the big-endian CRC32 trailer.
func walRecord(batch []wire.Result) []byte {
	rec := wire.AppendResults(nil, batch)
	var crcb [crcLen]byte
	binary.BigEndian.PutUint32(crcb[:], crc32.ChecksumIEEE(rec))
	return append(rec, crcb[:]...)
}

// walCorpus is the checked-in seed corpus for FuzzWALReplay: segment
// files exercising the recovery paths — clean logs, torn tails, flipped
// CRC and payload bytes, non-Results frames, and plain garbage.
func walCorpus() map[string][]byte {
	r1 := walRecord(mkResults(0, 2))
	r2 := walRecord(mkResults(1, 3))
	valid := append(append([]byte(nil), r1...), r2...)

	torn := append([]byte(nil), r1...)
	torn = append(torn, r2[:len(r2)/2]...) // crash mid-write of record 2

	flippedCRC := append(append([]byte(nil), r1...), r2...)
	flippedCRC[len(flippedCRC)-1] ^= 0xff // damage record 2's CRC trailer

	flippedPayload := append(append([]byte(nil), r1...), r2...)
	flippedPayload[len(r1)+wire.HeaderLen+3] ^= 0xff // damage record 2's payload

	// A MsgTasks frame with a valid CRC: right framing, wrong type.
	tasksFrame := wire.AppendTasks(nil, []wire.Task{{ID: 1, Kind: "speedtest", Config: "esim"}})
	var crcb [crcLen]byte
	binary.BigEndian.PutUint32(crcb[:], crc32.ChecksumIEEE(tasksFrame))
	wrongType := append(append([]byte(nil), r1...), append(tasksFrame, crcb[:]...)...)

	return map[string][]byte{
		"seed-valid-two-records": valid,
		"seed-torn-tail":         torn,
		"seed-flipped-crc":       flippedCRC,
		"seed-flipped-payload":   flippedPayload,
		"seed-wrong-type-frame":  wrongType,
		"seed-garbage":           []byte("\x00\x01\x02 definitely not a WAL segment \xff\xfe"),
		"seed-empty":             {},
	}
}

// FuzzWALReplay feeds arbitrary bytes to Open as a single segment file
// and pins the recovery invariants: Open never panics and never errors
// on a lone (hence final) segment, Replay yields exactly Len() results
// and never anything past the first corruption, and a second Open of
// the recovered log agrees with the first.
func FuzzWALReplay(f *testing.F) {
	for _, name := range sortedKeys(walCorpus()) {
		f.Add(walCorpus()[name])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, segName(1))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{})
		if err != nil {
			// A single segment is by definition final: any corruption is
			// a truncatable tail, so Open must always succeed.
			t.Fatalf("Open on single segment: %v", err)
		}
		count := 0
		next, err := s.Replay(0, func(r wire.Result) error {
			count++
			return nil
		})
		if err != nil {
			t.Fatalf("Replay over recovered log: %v", err)
		}
		if count != s.Len() || next != s.Len() {
			t.Fatalf("Replay yielded %d (cursor %d), Len says %d", count, next, s.Len())
		}
		// The recovered file must end exactly at the committed size.
		_, bytes := s.Segments()
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != bytes {
			t.Fatalf("file size %d != committed bytes %d after recovery", fi.Size(), bytes)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		// Reopen idempotence: recovery of a recovered log is a no-op.
		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		if s2.Len() != count {
			t.Fatalf("reopen Len = %d, first recovery yielded %d", s2.Len(), count)
		}
		s2.Close()
	})
}

func sortedKeys(m map[string][]byte) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestFuzzCorpusUpToDate pins the checked-in seed corpus to walCorpus().
// Run with -update-corpus to regenerate after changing the record
// format (which also means old WALs stop replaying — think twice).
func TestFuzzCorpusUpToDate(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzWALReplay")
	corpus := walCorpus()
	if *updateCorpus {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, data := range corpus {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
			if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, name := range sortedKeys(corpus) {
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing corpus file (run go test -run TestFuzzCorpusUpToDate -update-corpus ./internal/walsink): %v", err)
		}
		want := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", corpus[name])
		if string(got) != want {
			t.Fatalf("corpus file %s is stale; regenerate with -update-corpus", name)
		}
	}
}
