package walsink

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"roamsim/internal/amigo"
	"roamsim/internal/obs"
	"roamsim/internal/wire"
)

// mkResults builds a deterministic batch of n results tagged with the
// given batch number so tests can tell records apart.
func mkResults(batch, n int) []wire.Result {
	out := make([]wire.Result, n)
	for i := range out {
		out[i] = wire.Result{
			TaskID:   batch*1000 + i + 1,
			ME:       fmt.Sprintf("PAK-%02d", batch%4),
			Kind:     "speedtest",
			Config:   "esim",
			OK:       true,
			Payload:  []byte(fmt.Sprintf(`{"batch":%d,"i":%d}`, batch, i)),
			Uploaded: time.Unix(0, int64(batch*100+i+1)).UTC(),
		}
	}
	return out
}

func collect(t *testing.T, s *Sink, cursor int) []wire.Result {
	t.Helper()
	var out []wire.Result
	next, err := s.Replay(cursor, func(r wire.Result) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay(%d): %v", cursor, err)
	}
	if want := cursor + len(out); next != want {
		t.Fatalf("Replay cursor = %d, want %d", next, want)
	}
	return out
}

func TestAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want []wire.Result
	for b := 0; b < 7; b++ {
		batch := mkResults(b, 3)
		s.Append(batch)
		want = append(want, batch...)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if got := s.Len(); got != len(want) {
		t.Fatalf("Len = %d, want %d", got, len(want))
	}
	if got := collect(t, s, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay before close diverged:\n got %+v\nwant %+v", got, want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything must still be there, and appends must resume.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Len(); got != len(want) {
		t.Fatalf("Len after reopen = %d, want %d", got, len(want))
	}
	more := mkResults(99, 2)
	s2.Append(more)
	want = append(want, more...)
	if got := collect(t, s2, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay after reopen diverged")
	}
	// Mid-log cursor replay.
	if got := collect(t, s2, 5); !reflect.DeepEqual(got, want[5:]) {
		t.Fatalf("replay from cursor 5 diverged")
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 256, SyncBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	var want []wire.Result
	for b := 0; b < 20; b++ {
		batch := mkResults(b, 2)
		s.Append(batch)
		want = append(want, batch...)
	}
	n, bytes := s.Segments()
	if n < 3 {
		t.Fatalf("expected rotation to produce >=3 segments, got %d (%d bytes)", n, bytes)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != n {
		t.Fatalf("on-disk segments = %d, metadata says %d", len(names), n)
	}
	s2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := collect(t, s2, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay across rotated segments diverged")
	}
}

// TestTornTailTruncated simulates a crash mid-write: the final segment
// ends with half a record, which Open must truncate away, keeping every
// fully-written record.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := mkResults(0, 5)
	s.Append(want)
	s.Append(mkResults(1, 3)) // this record will be torn
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := segmentNames(dir)
	path := filepath.Join(dir, names[len(names)-1])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the file mid-way through the second record.
	_, _, first, err := verifyRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:first+3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open with torn tail: %v", err)
	}
	defer s2.Close()
	if got := s2.Len(); got != len(want) {
		t.Fatalf("Len after torn-tail recovery = %d, want %d", got, len(want))
	}
	if got := collect(t, s2, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay after torn-tail recovery diverged")
	}
	// The truncated file must now end exactly on the record boundary.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != int64(first) {
		t.Fatalf("file size after recovery = %d, want %d", fi.Size(), first)
	}
}

// TestCRCFlipStopsAtCorruption flips one payload byte: the final
// segment's valid prefix ends before the damaged record, and replay
// yields only the records ahead of it.
func TestCRCFlipStopsAtCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	keep := mkResults(0, 4)
	s.Append(keep)
	s.Append(mkResults(1, 4)) // to be corrupted
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := segmentNames(dir)
	path := filepath.Join(dir, names[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, _, first, err := verifyRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	data[first+wire.HeaderLen+2] ^= 0xff // flip a byte inside record 2's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open with flipped CRC byte: %v", err)
	}
	defer s2.Close()
	if got := collect(t, s2, 0); !reflect.DeepEqual(got, keep) {
		t.Fatalf("replay past corruption: got %d results, want %d", len(got), len(keep))
	}
}

// TestMidLogCorruptionRefused damages a non-final segment: that is lost
// durable data, and Open must fail loudly instead of replaying a gap.
func TestMidLogCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 10; b++ {
		s.Append(mkResults(b, 2))
	}
	n, _ := s.Segments()
	if n < 2 {
		t.Fatalf("need >=2 segments for this test, got %d", n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := segmentNames(dir)
	path := filepath.Join(dir, names[0]) // first segment: mid-log
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[wire.HeaderLen+1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted mid-log corruption")
	}
}

func TestSincePaging(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var want []wire.Result
	for b := 0; b < 12; b++ {
		batch := mkResults(b, 4)
		s.Append(batch)
		want = append(want, batch...)
	}
	// Page through Since the way Server.Results does.
	var got []wire.Result
	cursor := 0
	for {
		rs, next := s.Since(cursor)
		if len(rs) == 0 || next <= cursor {
			break
		}
		got = append(got, rs...)
		cursor = next
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Since paging diverged: got %d results, want %d", len(got), len(want))
	}
	if _, next := s.Since(len(want) + 100); next != len(want) {
		t.Fatalf("Since past end: next = %d, want %d", next, len(want))
	}
}

// TestSincePageBoundary crosses the sincePage limit: a WAL holding more
// than one full page must hand out pages that concatenate to exactly
// the log, with no duplicated boundary record and no dropped tail.
func TestSincePageBoundary(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const perBatch = 500
	var want []wire.Result
	for b := 0; len(want) < sincePage; b++ {
		batch := mkResults(b, perBatch)
		s.Append(batch)
		want = append(want, batch...)
	}
	tail := mkResults(900, 3) // strictly past the page boundary
	s.Append(tail)
	want = append(want, tail...)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}

	// The first page must be exactly full and its cursor must count
	// every yielded result — cursor+sincePage, not one short.
	first, next := s.Since(0)
	if len(first) != sincePage {
		t.Fatalf("first page = %d results, want %d", len(first), sincePage)
	}
	if next != sincePage {
		t.Fatalf("first page next = %d, want %d", next, sincePage)
	}

	var got []wire.Result
	cursor := 0
	for {
		rs, n := s.Since(cursor)
		if len(rs) == 0 {
			if n != cursor {
				t.Fatalf("empty page moved cursor: %d -> %d", cursor, n)
			}
			break
		}
		if n != cursor+len(rs) {
			t.Fatalf("page at %d: next = %d, want %d", cursor, n, cursor+len(rs))
		}
		got = append(got, rs...)
		cursor = n
	}
	if len(got) != len(want) {
		t.Fatalf("paged read yielded %d results, want %d", len(got), len(want))
	}
	seen := make(map[int]bool, len(got))
	for i, r := range got {
		if seen[r.TaskID] {
			t.Fatalf("duplicate result at position %d: TaskID %d", i, r.TaskID)
		}
		seen[r.TaskID] = true
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("paged read diverged from log order")
	}
}

// TestServerIntegration drops the WAL behind a live amigo.Server and
// checks the cursor-paged admin read path and the 501-free contract.
func TestServerIntegration(t *testing.T) {
	dir := t.TempDir()
	wal, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	srv := amigo.NewServer(nil, amigo.WithSink(wal))
	if !srv.SupportsCursor() {
		t.Fatal("server did not detect walsink cursor support")
	}
	srv.Register("PAK-00", "PAK")
	ids, err := srv.ScheduleBatch("PAK-00", []amigo.Task{{Kind: "speedtest", Config: "esim"}, {Kind: "dns", Target: "8.8.8.8", Config: "sim"}})
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := srv.Lease("PAK-00", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != len(ids) {
		t.Fatalf("leased %d tasks, want %d", len(tasks), len(ids))
	}
	var up []amigo.Result
	for _, task := range tasks {
		up = append(up, amigo.Result{TaskID: task.ID, ME: "PAK-00", Kind: task.Kind, Config: task.Config, OK: true, Payload: []byte(`{"ok":true}`)})
	}
	if err := srv.Submit(up); err != nil {
		t.Fatal(err)
	}
	// Submit drains the spool into the WAL synchronously; the paged
	// admin read path now serves straight off disk.
	got := srv.Results()
	if len(got) != len(up) {
		t.Fatalf("Results() through walsink = %d results, want %d", len(got), len(up))
	}
	if wal.Len() != len(up) {
		t.Fatalf("wal.Len = %d, want %d", wal.Len(), len(up))
	}
}

func TestObsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 256, SyncBytes: 1, Obs: reg, Labels: []obs.Label{obs.L("shard", "0")}})
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 8; b++ {
		s.Append(mkResults(b, 2))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"walsink_records_total", "walsink_fsyncs_total", "walsink_segments", "walsink_bytes", `shard="0"`} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}

// TestRecordFormat pins the on-disk layout: wire frame || big-endian
// CRC32(IEEE) of the frame. If this breaks, old WALs stop replaying.
func TestRecordFormat(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	batch := mkResults(0, 1)
	s.Append(batch)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	frame := wire.AppendResults(nil, batch)
	if len(data) != len(frame)+crcLen {
		t.Fatalf("record length = %d, want frame %d + crc %d", len(data), len(frame), crcLen)
	}
	if !bytes.Equal(data[:len(frame)], frame) {
		t.Fatal("record frame bytes differ from wire.AppendResults")
	}
	want := crc32.ChecksumIEEE(frame)
	if got := binary.BigEndian.Uint32(data[len(frame):]); got != want {
		t.Fatalf("crc = %08x, want %08x", got, want)
	}
}
