// Package roamsim is a simulation and measurement toolkit for studying
// thick Mobile Network Aggregators (MNAs), reproducing the IMC 2025
// paper "Roam Without a Home: Unraveling the Airalo Ecosystem".
//
// The library models the full ecosystem a thick MNA spans — visited
// radio networks, the IPX interconnection fabric, GTP tunnels, PGW
// breakout providers, the public internet with content-provider edges,
// DNS (including anycast and DoH), CDNs, and an eSIM marketplace — and
// implements the paper's tomography methodology on top: roaming
// architecture classification (HR / LBO / IHBO / native), traceroute
// demarcation at the first public hop, PGW geolocation, and IMSI-range
// mining.
//
// # Quick start
//
//	w, err := roamsim.NewWorld(42)
//	if err != nil { ... }
//	s, err := w.Deployment("DEU").AttachESIM(w.Rand())
//	if err != nil { ... }
//	res, err := roamsim.Speedtest(s, w.Rand())
//	arch, err := w.ClassifyArchitecture(s)   // -> IHBO
//
// # Regenerating the paper
//
//	r, err := roamsim.NewExperimentRunner(roamsim.DefaultExperimentConfig())
//	tab, err := r.Table2()
//	fmt.Println(tab)
//
// Everything is deterministic for a given seed.
package roamsim

import (
	"roamsim/internal/airalo"
	"roamsim/internal/cdnsim"
	"roamsim/internal/core"
	"roamsim/internal/dnssim"
	"roamsim/internal/esimdb"
	"roamsim/internal/experiments"
	"roamsim/internal/ipx"
	"roamsim/internal/measure"
	"roamsim/internal/mno"
	"roamsim/internal/rng"
	"roamsim/internal/video"
)

// Architecture is a roaming data-path architecture.
type Architecture = ipx.Architecture

// The roaming architectures the classifier distinguishes.
const (
	HR     = ipx.HR
	LBO    = ipx.LBO
	IHBO   = ipx.IHBO
	Native = ipx.Native
)

// Session is one attachment of a SIM/eSIM profile in a visited country.
type Session = airalo.Session

// Deployment is one visited country's measurement setup.
type Deployment = airalo.Deployment

// Rand is a deterministic random stream.
type Rand = rng.Source

// World is the simulated Airalo ecosystem: 24 visited-country
// deployments, six roaming b-MNOs, the PGW providers of Table 2, the
// public internet, and the emnify validation operator.
type World struct {
	w   *airalo.World
	rnd *rng.Source
}

// NewWorld builds the ecosystem deterministically from a seed.
func NewWorld(seed int64) (*World, error) {
	w, err := airalo.Build(seed)
	if err != nil {
		return nil, err
	}
	return &World{w: w, rnd: rng.New(seed).Fork("api")}, nil
}

// Rand returns the world's default random stream. Callers needing
// reproducible sub-experiments should Fork it.
func (w *World) Rand() *Rand { return w.rnd }

// Deployment returns the deployment for an ISO3 country code (or
// "EMNIFY" for the validation setup), nil if absent.
func (w *World) Deployment(key string) *Deployment { return w.w.Deployments[key] }

// DeploymentKeys lists deployment keys; set web or device to filter to a
// campaign (both false = all 24 visited countries).
func (w *World) DeploymentKeys(web, device bool) []string {
	return w.w.DeploymentKeys(web, device)
}

// Raw exposes the underlying world for advanced use (topology access,
// registries). The returned value shares state with the World.
func (w *World) Raw() *airalo.World { return w.w }

// ClassifyArchitecture applies the paper's classification rule to a
// session: match the ASN of its public IP against the b-MNO (HR), the
// v-MNO (LBO), or a third party (IHBO).
func (w *World) ClassifyArchitecture(s *Session) (Architecture, error) {
	cl := &core.Classifier{Reg: w.w.Reg}
	// The b-MNO is the session profile's issuer: for an eSIM that is the
	// Airalo-contracted operator, for a physical SIM the local operator.
	return cl.ArchOf(s.PublicIP, s.Profile.Issuer, s.D.VMNO)
}

// Measurement tools (Table 1), re-exported from internal/measure.

// TraceResult is a traceroute with session context.
type TraceResult = measure.TraceResult

// SpeedtestResult is an Ookla-style observation.
type SpeedtestResult = measure.SpeedtestResult

// DNSLookupResult is a Nextdns-style resolver observation.
type DNSLookupResult = dnssim.LookupResult

// VideoStats is a stats-for-nerds summary.
type VideoStats = video.Stats

// VideoConfig parameterizes a playback session.
type VideoConfig = video.Config

// Traceroute runs an mtr-style traceroute to a service provider
// ("Google", "Facebook", "Ookla", ...).
func Traceroute(s *Session, sp string, r *Rand) (TraceResult, error) {
	return measure.Traceroute(s, sp, r)
}

// Speedtest runs a bandwidth test against the Ookla server nearest the
// session's breakout.
func Speedtest(s *Session, r *Rand) (SpeedtestResult, error) {
	return measure.Speedtest(s, r)
}

// DNSLookup resolves through the session's DNS configuration.
func DNSLookup(s *Session, r *Rand) (DNSLookupResult, error) {
	return measure.DNSLookup(s, r)
}

// StreamVideo plays the 4K test video over the session.
func StreamVideo(s *Session, cfg VideoConfig, r *Rand) (VideoStats, error) {
	return measure.StreamVideo(s, cfg, r)
}

// CDNFetch downloads jquery.min.js from one of the five CDN providers.
func CDNFetch(s *Session, provider string, r *Rand) (CDNFetchResult, error) {
	return measure.CDNFetch(s, provider, r)
}

// CDNFetchResult is one CDN download observation.
type CDNFetchResult = cdnsim.FetchResult

// Demarcate splits a traceroute at the first public hop and derives the
// paper's per-traceroute metrics (private/public lengths, PGW identity
// and RTT, unique ASNs).
func (w *World) Demarcate(tr TraceResult) (PathAnalysis, error) {
	return core.Demarcate(tr.Raw, w.w.Reg)
}

// PathAnalysis is the demarcated view of one traceroute.
type PathAnalysis = core.PathAnalysis

// MineIMSIRanges infers the IMSI blocks an operator leases to an
// aggregator from the IMSIs of seeded devices.
func MineIMSIRanges(seeded []mno.IMSI, opts core.MineOptions) (core.RangeSet, error) {
	return core.MineIMSIRanges(seeded, opts)
}

// Marketplace opens the synthetic eSIM marketplace aggregator.
func Marketplace(seed int64, providers int) *esimdb.Marketplace {
	return esimdb.New(seed, providers)
}

// ExperimentRunner regenerates the paper's tables and figures.
type ExperimentRunner = experiments.Runner

// ExperimentConfig sizes the regeneration campaigns.
type ExperimentConfig = experiments.Config

// DefaultExperimentConfig returns campaign sizes comparable to the
// paper's Table 4.
func DefaultExperimentConfig() ExperimentConfig { return experiments.DefaultConfig() }

// NewExperimentRunner builds a world and experiment runner.
func NewExperimentRunner(cfg ExperimentConfig) (*ExperimentRunner, error) {
	return experiments.NewRunner(cfg)
}

// NewExperimentRunnerWith reuses an existing world.
func NewExperimentRunnerWith(w *World, cfg ExperimentConfig) *ExperimentRunner {
	return experiments.NewRunnerWith(w.w, cfg)
}
