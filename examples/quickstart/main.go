// Quickstart: build the simulated Airalo world, attach an eSIM while
// "traveling" in Germany, discover where its traffic actually breaks
// out, and measure what that does to performance.
package main

import (
	"fmt"
	"log"

	"roamsim"
)

func main() {
	w, err := roamsim.NewWorld(42)
	if err != nil {
		log.Fatal(err)
	}

	// The traveler lands in Germany and activates their Airalo eSIM.
	dep := w.Deployment("DEU")
	session, err := dep.AttachESIM(w.Rand())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Attached in %s via v-MNO %s; the eSIM was issued by %s (%s)\n",
		dep.Country.Name, dep.VMNO.Name, dep.BMNO.Name, dep.BMNO.Country)
	fmt.Printf("Public IP: %s\n", session.PublicIP)

	// Where does the traffic actually reach the internet?
	arch, err := w.ClassifyArchitecture(session)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Roaming architecture: %s — breakout at %s, %s (%s)\n",
		arch, session.Site.City, session.Site.Country, session.Provider.Name)
	if session.Tunnel != nil {
		fmt.Printf("GTP tunnel span: %.0f km\n", session.Tunnel.SpanKm())
	}

	// A traceroute shows the private/public split directly.
	tr, err := roamsim.Traceroute(session, "Google", w.Rand())
	if err != nil {
		log.Fatal(err)
	}
	pa, err := w.Demarcate(tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Traceroute to Google: %d private hops, then PGW %s (%s), %d public hops\n",
		pa.PrivateHops, pa.PGW.Addr, pa.PGW.AS.Org, pa.PublicHops)
	fmt.Printf("%.0f%% of the end-to-end latency is spent before the breakout\n",
		pa.PrivateFraction*100)

	// And the performance picture.
	st, err := roamsim.Speedtest(session, w.Rand())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Speedtest (server %s): %.1f down / %.1f up Mbps, %.0f ms\n",
		st.ServerCity, st.DownMbps, st.UpMbps, st.LatencyMs)
	dns, err := roamsim.DNSLookup(session, w.Rand())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DNS: %s in %s, %.0f ms (DoH: %v)\n",
		dns.Resolver.Name, dns.Resolver.Country, dns.DurationMs, dns.DoH)
}
