// Voipcheck implements the paper's future-work measurement: jitter and
// packet loss for real-time services. For every device-campaign country
// it probes the eSIM and the physical SIM, scores both with the ITU-T
// E-model, and prints whether a VoIP call would survive the roaming
// architecture.
package main

import (
	"fmt"
	"log"

	"roamsim"
	"roamsim/internal/measure"
	"roamsim/internal/voip"
)

func main() {
	w, err := roamsim.NewWorld(4242)
	if err != nil {
		log.Fatal(err)
	}
	e := voip.EModel{}

	fmt.Printf("%-6s %-12s %9s %8s %7s %5s %5s  %s\n",
		"where", "config", "one-way", "jitter", "loss", "R", "MOS", "verdict")
	for _, iso := range w.DeploymentKeys(false, true) {
		dep := w.Deployment(iso)
		for _, config := range []string{"esim", "sim"} {
			var s *roamsim.Session
			var err error
			if config == "esim" {
				s, err = dep.AttachESIM(w.Rand())
			} else {
				s, err = dep.AttachSIM(w.Rand())
			}
			if err != nil {
				log.Fatal(err)
			}
			probe, err := measure.VoIPProbe(s, 300, w.Rand())
			if err != nil {
				log.Fatal(err)
			}
			r, mos := e.Score(probe)
			label := config
			if config == "esim" {
				label = fmt.Sprintf("esim/%s", s.Arch)
			}
			fmt.Printf("%-6s %-12s %7.0fms %6.1fms %6.1f%% %5.0f %5.2f  %s\n",
				iso, label, probe.OneWayMs, probe.JitterMs, probe.LossPercent,
				r, mos, voip.Grade(r))
		}
	}
	fmt.Println("\nHome-routed eSIMs pay the whole GTP tunnel in mouth-to-ear delay;")
	fmt.Println("the E-model charges nothing until ~177 ms and then charges steeply.")
}
