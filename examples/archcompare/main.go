// Archcompare contrasts the three roaming architectures the paper
// analyzes — Home-Routed (Pakistan), IPX Hub Breakout (Germany) and a
// native eSIM (Thailand) — side by side with the local physical SIM in
// each country, across latency, bandwidth, CDN and DNS.
//
// It is Figure 11/13/14 in miniature: HR pays for its tunnel to
// Singapore everywhere, IHBO pays less, native pays nothing.
package main

import (
	"fmt"
	"log"

	"roamsim"
	"roamsim/internal/stats"
)

const samples = 20

type row struct {
	label    string
	arch     roamsim.Architecture
	rtt      []float64
	down     []float64
	cdn      []float64
	dns      []float64
	breakout string
}

func main() {
	w, err := roamsim.NewWorld(7)
	if err != nil {
		log.Fatal(err)
	}

	var rows []*row
	for _, iso := range []string{"PAK", "DEU", "THA"} {
		dep := w.Deployment(iso)
		for _, config := range []string{"esim", "sim"} {
			r := &row{label: fmt.Sprintf("%s %s", iso, config)}
			for i := 0; i < samples; i++ {
				var s *roamsim.Session
				var err error
				if config == "esim" {
					s, err = dep.AttachESIM(w.Rand())
				} else {
					s, err = dep.AttachSIM(w.Rand())
				}
				if err != nil {
					log.Fatal(err)
				}
				if i == 0 {
					r.arch, err = w.ClassifyArchitecture(s)
					if err != nil {
						log.Fatal(err)
					}
					r.breakout = fmt.Sprintf("%s, %s", s.Site.City, s.Site.Country)
				}
				st, err := roamsim.Speedtest(s, w.Rand())
				if err != nil {
					log.Fatal(err)
				}
				r.rtt = append(r.rtt, st.LatencyMs)
				r.down = append(r.down, st.DownMbps)
				cdn, err := roamsim.CDNFetch(s, "Cloudflare", w.Rand())
				if err != nil {
					log.Fatal(err)
				}
				r.cdn = append(r.cdn, cdn.TotalMs)
				dq, err := roamsim.DNSLookup(s, w.Rand())
				if err != nil {
					log.Fatal(err)
				}
				r.dns = append(r.dns, dq.DurationMs)
			}
			rows = append(rows, r)
		}
	}

	fmt.Printf("%-10s %-8s %-18s %10s %10s %10s %10s\n",
		"config", "arch", "breakout", "RTT ms", "down Mbps", "CDN ms", "DNS ms")
	for _, r := range rows {
		fmt.Printf("%-10s %-8s %-18s %10.0f %10.1f %10.0f %10.0f\n",
			r.label, r.arch, r.breakout,
			stats.Median(r.rtt), stats.Median(r.down),
			stats.Median(r.cdn), stats.Median(r.dns))
	}

	fmt.Println("\nTakeaway: the HR eSIM tunnels every packet to Singapore before it")
	fmt.Println("touches the internet; the IHBO eSIM breaks out in Western Europe,")
	fmt.Println("closer but still not local; the native eSIM is indistinguishable")
	fmt.Println("from the physical SIM.")
}
