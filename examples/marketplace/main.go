// Marketplace runs the economics analysis end to end over the crawler
// code path: serve the synthetic aggregator over HTTP, crawl the study
// period from three vantage points, and reproduce the Section 6
// findings — continent price gaps, the April Asia price rise, the
// provider ordering, and the absence of price discrimination.
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"roamsim"
	"roamsim/internal/esimdb"
	"roamsim/internal/geo"
	"roamsim/internal/stats"
)

func main() {
	m := roamsim.Marketplace(2024, 54)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	crawler := &esimdb.Crawler{BaseURL: srv.URL, Vantage: "Madrid"}

	// Weekly crawls across the campaign.
	fmt.Println("weekly median $/GB (Airalo), Europe vs Asia:")
	for d := esimdb.CampaignStart; !d.After(esimdb.CampaignEnd); d = d.AddDate(0, 0, 14) {
		plans, err := crawler.Crawl(d)
		if err != nil {
			log.Fatal(err)
		}
		dist := esimdb.ContinentDistribution(plans, "Airalo")
		fmt.Printf("  %s  EU=%.2f  Asia=%.2f\n",
			d.Format("Jan 02"), stats.Median(dist[geo.Europe]), stats.Median(dist[geo.Asia]))
	}

	// Snapshot analysis.
	snapshot, err := crawler.Crawl(esimdb.SnapshotDate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsnapshot %s: %d offers from %d providers\n",
		esimdb.SnapshotDate.Format("2006-01-02"), len(snapshot), len(m.Providers()))

	pm := esimdb.ProviderMedianPerGB(snapshot)
	fmt.Println("\nprovider league table (cheapest first):")
	for _, name := range []string{"Airhub", "MobiMatter", "Nomad", "Airalo", "Keepgo"} {
		fmt.Printf("  %-12s $%.2f/GB\n", name, pm[name].Median)
	}

	// Same-b-MNO price dispersion (the Figure 19 observation).
	fmt.Println("\nPlay-issued Airalo plans, Georgia vs Spain (same b-MNO!):")
	for _, iso := range []string{"GEO", "ESP"} {
		var perGB []float64
		for _, p := range snapshot {
			if p.Provider == "Airalo" && p.Country == iso && p.SizeGB <= 5 {
				perGB = append(perGB, p.PerGB())
			}
		}
		fmt.Printf("  %s median $%.2f/GB\n", iso, stats.Median(perGB))
	}

	// Discrimination check across vantages.
	vantages := []string{"Madrid", "Abu Dhabi", "New Jersey"}
	base, _ := crawler.Crawl(esimdb.SnapshotDate)
	same := true
	start := time.Now()
	for _, v := range vantages[1:] {
		c := &esimdb.Crawler{BaseURL: srv.URL, Vantage: v}
		plans, err := c.Crawl(esimdb.SnapshotDate)
		if err != nil {
			log.Fatal(err)
		}
		for i := range plans {
			if plans[i] != base[i] {
				same = false
				break
			}
		}
	}
	fmt.Printf("\nvantage check (%d vantages, %.0f ms): identical catalogs = %v\n",
		len(vantages), float64(time.Since(start).Milliseconds()), same)
}
