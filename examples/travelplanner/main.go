// Travelplanner combines the performance and economics sides of the
// study: for a multi-country itinerary it predicts what the Airalo eSIM
// will do in each country (architecture, breakout, expected latency and
// bandwidth) and compares the marketplace price against the local
// physical-SIM option, producing a per-stop recommendation.
package main

import (
	"fmt"
	"log"

	"roamsim"
	"roamsim/internal/esimdb"
	"roamsim/internal/stats"
)

// The trip: a traveler hops across four of the study's countries.
var itinerary = []string{"ESP", "TUR", "ARE", "THA"}

func main() {
	w, err := roamsim.NewWorld(99)
	if err != nil {
		log.Fatal(err)
	}
	market := roamsim.Marketplace(99, 54)
	offers := market.Offers(esimdb.SnapshotDate)

	localByCountry := map[string]esimdb.LocalSIMOffer{}
	for _, o := range esimdb.LocalSIMOffers {
		localByCountry[o.Country] = o
	}

	fmt.Println("Trip plan: " + fmt.Sprint(itinerary))
	fmt.Println()

	// Whole-trip economics via the marketplace API.
	var stops []esimdb.TripStop
	for _, iso := range itinerary {
		stops = append(stops, esimdb.TripStop{Country: iso, GB: 3})
	}
	tc := esimdb.PlanTrip(offers, "Airalo", stops)
	fmt.Printf("whole trip (3 GB per stop): Airalo $%.2f across %d stops; local SIMs $%.2f (%d stops priced)\n\n",
		tc.ESIMTotalUSD, tc.Covered, tc.LocalTotalUSD, tc.LocalKnown)
	for _, iso := range itinerary {
		dep := w.Deployment(iso)
		if dep == nil {
			log.Fatalf("no deployment for %s", iso)
		}

		// Predict the eSIM experience with a few probe sessions.
		var rtts, downs []float64
		var arch roamsim.Architecture
		var breakout string
		for i := 0; i < 10; i++ {
			s, err := dep.AttachESIM(w.Rand())
			if err != nil {
				log.Fatal(err)
			}
			if i == 0 {
				arch, err = w.ClassifyArchitecture(s)
				if err != nil {
					log.Fatal(err)
				}
				breakout = fmt.Sprintf("%s (%s)", s.Site.City, s.Provider.Name)
			}
			st, err := roamsim.Speedtest(s, w.Rand())
			if err != nil {
				log.Fatal(err)
			}
			rtts = append(rtts, st.LatencyMs)
			downs = append(downs, st.DownMbps)
		}
		rtt, down := stats.Median(rtts), stats.Median(downs)

		// Cheapest 3 GB-ish Airalo plan for the stop.
		var bestAiralo *esimdb.Plan
		for i := range offers {
			p := &offers[i]
			if p.Provider != "Airalo" || p.Country != iso || p.SizeGB < 2 || p.SizeGB > 5 {
				continue
			}
			if bestAiralo == nil || p.PerGB() < bestAiralo.PerGB() {
				bestAiralo = p
			}
		}

		fmt.Printf("== %s (%s) ==\n", dep.Country.Name, iso)
		fmt.Printf("  eSIM: %s via %s, breakout %s\n", arch, dep.BMNO.Name, breakout)
		fmt.Printf("  expected: %.0f ms RTT, %.1f Mbps down\n", rtt, down)
		if bestAiralo != nil {
			fmt.Printf("  Airalo plan: %.0f GB for $%.2f ($%.2f/GB)\n",
				bestAiralo.SizeGB, bestAiralo.PriceUSD, bestAiralo.PerGB())
		}
		if local, ok := localByCountry[iso]; ok {
			fmt.Printf("  local SIM: %.0f GB for $%.2f total ($%.2f/GB)\n",
				local.PlanGB, local.TotalUSD(), local.PerGB())
		}
		fmt.Printf("  verdict: %s\n\n", verdict(arch, rtt, down, bestAiralo, localByCountry[iso]))
	}
}

func verdict(arch roamsim.Architecture, rtt, down float64, airalo *esimdb.Plan, local esimdb.LocalSIMOffer) string {
	switch {
	case arch == roamsim.HR && rtt > 150:
		return "AVOID the eSIM for latency-sensitive use: home-routed via Singapore. Buy a local SIM."
	case arch == roamsim.Native:
		return "eSIM is native here — performance matches a local SIM; pick by price."
	case airalo != nil && local.PlanGB > 0 && local.TotalUSD() > airalo.PriceUSD:
		return "eSIM wins on total cost for a short stay, despite the roaming detour."
	case down < 10:
		return "Throttled roaming bandwidth; fine for maps and messaging, poor for video."
	default:
		return "eSIM is convenient and adequate; local SIM is cheaper per GB if you stay longer."
	}
}
