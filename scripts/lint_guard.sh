#!/usr/bin/env bash
# lint_guard.sh: asserts a full-module roamvet run (all nine analyzers,
# including the CFG-based flow analyzers and the module-wide lock
# graph) finishes inside its wall-clock budget. A blowup here means an
# analyzer went super-linear on real code — the suite must stay cheap
# enough to run on every push.
#
# Usage: lint_guard.sh [path-to-roamvet]
# Budget override: LINT_GUARD_BUDGET_S (default 30).
set -euo pipefail

BUDGET_S="${LINT_GUARD_BUDGET_S:-30}"
BIN="${1:-bin/roamvet}"

if [ ! -x "$BIN" ]; then
  echo "lint_guard: $BIN is not built (run: make bin/roamvet)" >&2
  exit 2
fi

start=$(date +%s)
if ! "$BIN" >/dev/null; then
  echo "lint_guard: roamvet reported findings or failed; fix those first (make lint)" >&2
  exit 1
fi
end=$(date +%s)
elapsed=$((end - start))

echo "lint_guard: full-module roamvet run took ${elapsed}s (budget ${BUDGET_S}s)"
if [ "$elapsed" -gt "$BUDGET_S" ]; then
  echo "lint_guard: FAIL — an analyzer is over budget" >&2
  exit 1
fi
