#!/usr/bin/env bash
# shard_smoke.sh — end-to-end smoke for the sharded control plane and
# the WAL result sink, via the real binaries. Run via `make shard-smoke`.
#
# Part 1: roam-fleet self-hosts a 4-shard plane with durable WALs, kills
# a shard mid-campaign, and must still crosscheck byte-identical against
# the serial in-process run.
#
# Part 2: roam-gateway serves a WAL-backed plane as a separate process;
# roam-fleet drives it via -server and crosschecks; the gateway is then
# SIGTERMed and restarted over the same WAL dir, and must report the
# drained results replayed from disk — the cold-recovery path.
set -euo pipefail

TMP="$(mktemp -d)"
PORT="${SHARD_SMOKE_PORT:-18933}"

cleanup() {
    [ -n "${GW_PID:-}" ] && kill "$GW_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

go build -o "$TMP/roam-fleet" ./cmd/roam-fleet
go build -o "$TMP/roam-gateway" ./cmd/roam-gateway

# --- Part 1: sharded self-host, one forced shard kill, crosscheck. ---
OUT="$TMP/fleet.txt"
"$TMP/roam-fleet" -mes 12 -reps 1 -proto v3 \
    -shards 4 -wal-dir "$TMP/wal-fleet" -kill-shard 0 -crosscheck > "$OUT"

grep -q '^shards: 4 shards (WAL epoch 0), 1 killed and recovered' "$OUT" || {
    echo "shard-smoke: expected exactly one shard kill+recovery" >&2
    grep '^shards:' "$OUT" >&2 || true
    exit 1
}
grep -q '^crosscheck: fleet output matches' "$OUT" || {
    echo "shard-smoke: crosscheck line missing after shard kill" >&2
    exit 1
}

# --- Part 2: external gateway process, drive, kill, cold-restart. ---
"$TMP/roam-gateway" -listen "127.0.0.1:$PORT" -shards 3 \
    -wal-dir "$TMP/wal-gw" > "$TMP/gw1.txt" &
GW_PID=$!
i=0
until curl -sf "http://127.0.0.1:$PORT/admin/mes" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "shard-smoke: gateway did not come up on port $PORT" >&2
        exit 1
    fi
    sleep 0.1
done

"$TMP/roam-fleet" -mes 12 -reps 1 -proto v2 \
    -server "http://127.0.0.1:$PORT" -crosscheck > "$TMP/drive.txt"
grep -q '^crosscheck: fleet output matches' "$TMP/drive.txt" || {
    echo "shard-smoke: crosscheck failed against external gateway" >&2
    exit 1
}

kill -TERM "$GW_PID"
wait "$GW_PID" 2>/dev/null || true
GW_PID=

# Cold restart over the same WAL dir: the banner must report replayed
# results, proving the drained uploads survived the process death.
"$TMP/roam-gateway" -listen "127.0.0.1:$PORT" -shards 3 \
    -wal-dir "$TMP/wal-gw" > "$TMP/gw2.txt" &
GW_PID=$!
i=0
until grep -q 'results replayed' "$TMP/gw2.txt" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "shard-smoke: restarted gateway printed no banner" >&2
        exit 1
    fi
    sleep 0.1
done
REPLAYED="$(sed -n 's/.*(\([0-9]*\) results replayed).*/\1/p' "$TMP/gw2.txt")"
if [ -z "$REPLAYED" ] || [ "$REPLAYED" -eq 0 ]; then
    echo "shard-smoke: gateway restart replayed no results from the WALs" >&2
    cat "$TMP/gw2.txt" >&2
    exit 1
fi

echo "shard-smoke: OK (1 shard kill recovered; $REPLAYED results survived gateway restart)"
