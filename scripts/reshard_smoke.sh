#!/usr/bin/env bash
# reshard_smoke.sh — end-to-end smoke for live resharding and WAL
# compaction, via the real binaries. Run via `make reshard-smoke`.
#
# Part 1: roam-fleet self-hosts a 1-shard plane with durable WALs,
# live-reshards it onto 4 shards mid-campaign, compacts segments as
# they seal, and must still crosscheck byte-identical against the
# serial in-process run.
#
# Part 2: roam-gateway cold-starts over the resharded+compacted WAL
# dir. The manifest must steer it to the epoch-1 four-shard set (the
# -shards flag deliberately disagrees), and the banner must report
# every drained result replayed from the surviving — partly compacted —
# segments.
set -euo pipefail

TMP="$(mktemp -d)"
PORT="${RESHARD_SMOKE_PORT:-18943}"

cleanup() {
    [ -n "${GW_PID:-}" ] && kill "$GW_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

go build -o "$TMP/roam-fleet" ./cmd/roam-fleet
go build -o "$TMP/roam-gateway" ./cmd/roam-gateway

# --- Part 1: live 1→4 reshard + compaction under -crosscheck. ---
OUT="$TMP/fleet.txt"
"$TMP/roam-fleet" -mes 12 -reps 1 -proto v3 \
    -shards 1 -wal-dir "$TMP/wal" -wal-segment-bytes 2048 \
    -reshard 4 -reshard-after 3 -compact-after 2 -crosscheck > "$OUT"

grep -q '^shards: 4 shards (WAL epoch 1)' "$OUT" || {
    echo "reshard-smoke: expected the campaign to end on 4 shards at epoch 1" >&2
    grep '^shards:' "$OUT" >&2 || true
    exit 1
}
grep -q '^reshard: 1 reshards completed' "$OUT" || {
    echo "reshard-smoke: reshard summary line missing" >&2
    exit 1
}
grep -Eq '^compact: [1-9][0-9]* source segments retired' "$OUT" || {
    echo "reshard-smoke: no WAL segments were compacted — shrink -wal-segment-bytes" >&2
    grep '^compact:' "$OUT" >&2 || true
    exit 1
}
grep -q '^crosscheck: fleet output matches' "$OUT" || {
    echo "reshard-smoke: crosscheck failed after reshard+compaction" >&2
    exit 1
}
RECORDS="$(sed -n 's/.*WAL: \([0-9]*\) results in.*/\1/p' "$OUT")"
if [ -z "$RECORDS" ] || [ "$RECORDS" -eq 0 ]; then
    echo "reshard-smoke: fleet reported no WAL records" >&2
    exit 1
fi

# --- Part 2: cold restart over the resharded WALs, manifest-steered. ---
# -shards 2 on purpose: the manifest (epoch 1, 4 shards) must win.
"$TMP/roam-gateway" -listen "127.0.0.1:$PORT" -shards 2 \
    -wal-dir "$TMP/wal" > "$TMP/gw.txt" &
GW_PID=$!
i=0
until grep -q 'results replayed' "$TMP/gw.txt" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "reshard-smoke: gateway printed no banner over the resharded WALs" >&2
        cat "$TMP/gw.txt" >&2 || true
        exit 1
    fi
    sleep 0.1
done
grep -q '^roam-gateway: 4 shards (WAL epoch 1)' "$TMP/gw.txt" || {
    echo "reshard-smoke: restart ignored the WAL manifest" >&2
    cat "$TMP/gw.txt" >&2
    exit 1
}
REPLAYED="$(sed -n 's/.*(\([0-9]*\) results replayed).*/\1/p' "$TMP/gw.txt")"
if [ "$REPLAYED" != "$RECORDS" ]; then
    echo "reshard-smoke: cold replay returned $REPLAYED results, campaign drained $RECORDS" >&2
    exit 1
fi
kill -TERM "$GW_PID"
wait "$GW_PID" 2>/dev/null || true
GW_PID=

echo "reshard-smoke: OK (1→4 reshard crosschecked; $REPLAYED results survived compaction + cold restart)"
