#!/usr/bin/env bash
# metrics_smoke.sh — boot a real amigo-server, scrape /admin/metrics,
# and assert the exposition is non-empty, parseable Prometheus text that
# covers the control-server metric family. Run via `make metrics-smoke`.
set -euo pipefail

TMPDIR_SMOKE="$(mktemp -d)"
BIN="$TMPDIR_SMOKE/amigo-server"
OUT="$TMPDIR_SMOKE/metrics.txt"
PORT="${METRICS_SMOKE_PORT:-18931}"

cleanup() {
    [ -n "${SRV_PID:-}" ] && kill "$SRV_PID" 2>/dev/null || true
    rm -rf "$TMPDIR_SMOKE"
}
trap cleanup EXIT INT TERM

go build -o "$BIN" ./cmd/amigo-server
"$BIN" -addr "127.0.0.1:$PORT" &
SRV_PID=$!

# Wait for the server to come up (curl retries until it connects).
i=0
until curl -sf "http://127.0.0.1:$PORT/admin/metrics" -o "$OUT" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "metrics-smoke: server did not come up on port $PORT" >&2
        exit 1
    fi
    sleep 0.1
done

# Exercise a route so the per-route counters move, then re-scrape.
curl -sf -X POST "http://127.0.0.1:$PORT/v1/register" \
    -d '{"me":"smoke-me","country":"PAK"}' >/dev/null
curl -sf "http://127.0.0.1:$PORT/admin/metrics" -o "$OUT"

if ! [ -s "$OUT" ]; then
    echo "metrics-smoke: /admin/metrics returned an empty body" >&2
    exit 1
fi

# Every line must be a comment or `name{labels} value` with a numeric
# (or Inf/NaN) value — the shape every Prometheus scraper expects.
if ! awk '
    /^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$/ { next }
    /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? -?([0-9].*|\+?Inf|NaN)$/ { series++; next }
    { print "metrics-smoke: malformed line: " $0 > "/dev/stderr"; bad = 1 }
    END { exit (bad || series == 0) }
' "$OUT"; then
    echo "metrics-smoke: exposition failed validation" >&2
    exit 1
fi

for family in amigo_server_requests_total amigo_server_registered_mes; do
    if ! grep -q "^$family" "$OUT"; then
        echo "metrics-smoke: missing $family family" >&2
        exit 1
    fi
done

# The register call above must be visible in the per-route counters and
# the ME gauge — proof the scrape reflects live server state.
if ! grep -q '^amigo_server_registered_mes 1$' "$OUT"; then
    echo "metrics-smoke: registered-ME gauge did not move" >&2
    exit 1
fi

echo "metrics-smoke: OK ($(grep -c . "$OUT") exposition lines)"
