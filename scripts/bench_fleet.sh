#!/usr/bin/env bash
# bench_fleet.sh — run BenchmarkFleetThroughput for every protocol at
# 100 and 1000 MEs and snapshot the results/s figures into a JSON file
# (default BENCH_fleet.json). CI uploads the file as an artifact so
# control-plane throughput is comparable commit over commit.
#
# Usage: bench_fleet.sh [OUT.json]
#
# The snapshot also records the v3/v2 speedup at 1000 MEs (the
# acceptance floor for the zero-allocation binary codec is 3x) and the
# sharded-gateway ratio at 1000 MEs — the v3-shards4 row is the same v3
# drain through the 4-shard consistent-hash gateway, so the ratio prices
# the routing peek + proxy hop.
#
# It also runs the same realized 1000-ME campaign twice through
# roam-fleet — once on the wall clock, once on the virtual clock — and
# records the wall-time ratio as virtual_over_real_at_1000. The video
# tool is excluded (its 120 s watch window alone would dominate the real
# run) and the real side gets an explicit worker pool so realized sleeps
# overlap; the virtual side jumps them at quiescence either way. The
# acceptance floor for the virtual-time engine is 5x.
set -euo pipefail

OUT="${1:-BENCH_fleet.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT INT TERM

FLEET_FLAGS=(-mes 1000 -workers 64 -reps 1 -configs sim -tools cdn -realize)

wall_seconds() { # args: roam-fleet flags...; prints the run-wall-seconds value
    go run ./cmd/roam-fleet "$@" | awk '/^run-wall-seconds:/ { print $2 }'
}

echo "bench-fleet: realized 1000-ME campaign, wall clock..."
REAL_WALL="$(wall_seconds "${FLEET_FLAGS[@]}")"
echo "bench-fleet: realized 1000-ME campaign, virtual clock..."
VIRT_WALL="$(wall_seconds "${FLEET_FLAGS[@]}" -virtual-time)"
SPEEDUP="$(awk -v r="$REAL_WALL" -v v="$VIRT_WALL" 'BEGIN { printf "%.2f", r / v }')"
echo "bench-fleet: real ${REAL_WALL}s, virtual ${VIRT_WALL}s => ${SPEEDUP}x"
if ! awk -v s="$SPEEDUP" 'BEGIN { exit !(s >= 5.0) }'; then
    echo "bench-fleet: FAIL: virtual_over_real_at_1000 = ${SPEEDUP}x, acceptance floor is 5x" >&2
    exit 1
fi

# -short skips the 10k-ME rows (minutes of wall clock); 100/1000 MEs
# are the rows the acceptance gate and the README table quote.
go test -short -run='^$' -bench=FleetThroughput -benchtime=1x \
    ./internal/fleet | tee "$RAW"

# Benchmark lines look like:
#   BenchmarkFleetThroughput/v3/mes=1000-8  1  123456 ns/op  232075 results/s
awk -v real_wall="$REAL_WALL" -v virt_wall="$VIRT_WALL" '
BEGIN { print "{"; first = 1 }
/^BenchmarkFleetThroughput\// {
    split($1, parts, "/")
    proto = parts[2]
    sub(/-[0-9]+$/, "", parts[3])  # strip -GOMAXPROCS suffix
    mes = parts[3]; sub(/^mes=/, "", mes)
    for (i = 2; i < NF; i++) if ($(i + 1) == "results/s") rate = $i
    key = proto "/mes=" mes
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": %s", key, rate
    rates[key] = rate
}
END {
    if (("v2/mes=1000" in rates) && ("v3/mes=1000" in rates) && rates["v2/mes=1000"] > 0)
        printf ",\n  \"v3_over_v2_at_1000\": %.2f", rates["v3/mes=1000"] / rates["v2/mes=1000"]
    if (("v3/mes=1000" in rates) && ("v3-shards4/mes=1000" in rates) && rates["v3/mes=1000"] > 0)
        printf ",\n  \"shards4_over_1_at_1000\": %.2f", rates["v3-shards4/mes=1000"] / rates["v3/mes=1000"]
    if (virt_wall > 0)
        printf ",\n  \"virtual_over_real_at_1000\": %.2f", real_wall / virt_wall
    print "\n}"
}
' "$RAW" > "$OUT"

echo "bench-fleet: wrote $OUT"
cat "$OUT"
