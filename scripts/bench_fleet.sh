#!/usr/bin/env bash
# bench_fleet.sh — run BenchmarkFleetThroughput for every protocol at
# 100 and 1000 MEs and snapshot the results/s figures into a JSON file
# (default BENCH_fleet.json). CI uploads the file as an artifact so
# control-plane throughput is comparable commit over commit.
#
# Usage: bench_fleet.sh [OUT.json]
#
# The snapshot also records the v3/v2 speedup at 1000 MEs (the
# acceptance floor for the zero-allocation binary codec is 3x) and the
# sharded-gateway ratio at 1000 MEs — the v3-shards4 row is the same v3
# drain through the 4-shard consistent-hash gateway, so the ratio prices
# the routing peek + proxy hop.
set -euo pipefail

OUT="${1:-BENCH_fleet.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT INT TERM

# -short skips the 10k-ME rows (minutes of wall clock); 100/1000 MEs
# are the rows the acceptance gate and the README table quote.
go test -short -run='^$' -bench=FleetThroughput -benchtime=1x \
    ./internal/fleet | tee "$RAW"

# Benchmark lines look like:
#   BenchmarkFleetThroughput/v3/mes=1000-8  1  123456 ns/op  232075 results/s
awk '
BEGIN { print "{"; first = 1 }
/^BenchmarkFleetThroughput\// {
    split($1, parts, "/")
    proto = parts[2]
    sub(/-[0-9]+$/, "", parts[3])  # strip -GOMAXPROCS suffix
    mes = parts[3]; sub(/^mes=/, "", mes)
    for (i = 2; i < NF; i++) if ($(i + 1) == "results/s") rate = $i
    key = proto "/mes=" mes
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": %s", key, rate
    rates[key] = rate
}
END {
    if (("v2/mes=1000" in rates) && ("v3/mes=1000" in rates) && rates["v2/mes=1000"] > 0)
        printf ",\n  \"v3_over_v2_at_1000\": %.2f", rates["v3/mes=1000"] / rates["v2/mes=1000"]
    if (("v3/mes=1000" in rates) && ("v3-shards4/mes=1000" in rates) && rates["v3/mes=1000"] > 0)
        printf ",\n  \"shards4_over_1_at_1000\": %.2f", rates["v3-shards4/mes=1000"] / rates["v3/mes=1000"]
    print "\n}"
}
' "$RAW" > "$OUT"

echo "bench-fleet: wrote $OUT"
cat "$OUT"
