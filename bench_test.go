package roamsim

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation, each regenerating the artifact end-to-end and
// reporting the rows/series the paper reports (run with -v via
// `go test -bench=. -benchmem`). Shapes — who wins, by what factor,
// where crossovers fall — are asserted by the test suite; the benches
// measure regeneration cost and print the key headline numbers once.
//
// EXPERIMENTS.md records paper-vs-measured values for every artifact.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"roamsim/internal/netsim"
)

var (
	benchOnce   sync.Once
	benchRunner *ExperimentRunner
	benchErr    error
)

// benchSetup builds one world + runner shared by every benchmark; the
// first dataset-dependent benchmark pays the campaign cost, the rest
// reuse the memoized observations (like the real analysis pipeline).
func benchSetup(b *testing.B) *ExperimentRunner {
	b.Helper()
	benchOnce.Do(func() {
		cfg := DefaultExperimentConfig()
		cfg.TracesPerCountry = 20
		cfg.SpeedtestsPerCountry = 30
		cfg.CDNFetchesPerCountry = 10
		cfg.DNSPerCountry = 25
		cfg.VideosPerCountry = 6
		cfg.WebMeasurements = 6
		benchRunner, benchErr = NewExperimentRunner(cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchRunner
}

func BenchmarkTable2(b *testing.B) {
	r := benchSetup(b)
	rows := 0
	for i := 0; i < b.N; i++ {
		tab, err := r.Table2()
		if err != nil {
			b.Fatal(err)
		}
		rows = len(tab.Rows)
	}
	b.Logf("Table2: %d b-MNO rows re-derived (paper: 6)", rows)
}

func BenchmarkTable3(b *testing.B) {
	r := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	r := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	r := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	r := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	r := benchSetup(b)
	var prec, rec float64
	for i := 0; i < b.N; i++ {
		res, err := r.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		prec, rec = res.Precision, res.Recall
	}
	b.Logf("Figure5: IMSI mining precision=%.2f recall=%.2f", prec, rec)
}

func BenchmarkFigure6(b *testing.B) {
	r := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	r := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	r := benchSetup(b)
	var pak, uae float64
	for i := 0; i < b.N; i++ {
		res, err := r.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		pak, uae = res.Medians["PAK"], res.Medians["ARE"]
	}
	b.Logf("Figure8: PGW RTT medians PAK=%.0fms UAE=%.0fms (UAE wins despite distance)", pak, uae)
}

func BenchmarkFigure9(b *testing.B) {
	r := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure9(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	r := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure10(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11(b *testing.B) {
	r := benchSetup(b)
	var hr, ihbo, esim150, sim150 float64
	for i := 0; i < b.N; i++ {
		res, err := r.Figure11()
		if err != nil {
			b.Fatal(err)
		}
		hr, ihbo = res.HRInflation, res.IHBOInflation
		esim150, sim150 = res.ESIMFracAbove150, res.SIMFracAbove150
	}
	b.Logf("Figure11: HR inflation=%.0f%% IHBO=%.0f%% (paper: 621%%/64%%); >150ms eSIM=%.1f%% SIM=%.1f%% (paper: 14.5%%/3%%)",
		hr*100, ihbo*100, esim150*100, sim150*100)
}

func BenchmarkFigure12(b *testing.B) {
	r := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure12(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure13(b *testing.B) {
	r := benchSetup(b)
	var slow, fast float64
	for i := 0; i < b.N; i++ {
		res, err := r.Figure13()
		if err != nil {
			b.Fatal(err)
		}
		slow, fast = res.ESIMSlowShare, res.ESIMFastShare
	}
	b.Logf("Figure13: roaming eSIM slow(<=15Mbps)=%.1f%% fast(>=30Mbps)=%.1f%% (paper: 78.8%%/4.5%%)", slow*100, fast*100)
}

func BenchmarkFigure14a(b *testing.B) {
	r := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure14a(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure14b(b *testing.B) {
	r := benchSetup(b)
	var share float64
	for i := 0; i < b.N; i++ {
		res, err := r.Figure14b()
		if err != nil {
			b.Fatal(err)
		}
		share = res.GoogleResolverShareSameCountry
	}
	b.Logf("Figure14b: IHBO lookups answered in PGW country=%.0f%% (paper: 74%%)", share*100)
}

func BenchmarkFigure15(b *testing.B) {
	r := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure15(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure16(b *testing.B) {
	r := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure16(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure17(b *testing.B) {
	r := benchSetup(b)
	var airalo, mobi float64
	for i := 0; i < b.N; i++ {
		res, err := r.Figure17()
		if err != nil {
			b.Fatal(err)
		}
		airalo, mobi = res.Medians["Airalo"], res.Medians["MobiMatter"]
	}
	b.Logf("Figure17: median $/GB Airalo=%.2f MobiMatter=%.2f (paper: 7.9 / ~60%% cheaper)", airalo, mobi)
}

func BenchmarkFigure18(b *testing.B) {
	r := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure18(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure19(b *testing.B) {
	r := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure19(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure20(b *testing.B) {
	r := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure20(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidation(b *testing.B) {
	r := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.Validation(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPGWSelection(b *testing.B) {
	r := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationPGWSelection(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPolicyCaps(b *testing.B) {
	r := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationPolicyCaps(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPeering(b *testing.B) {
	r := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationPeering(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLBO(b *testing.B) {
	r := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationLBO(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFutureVoIP(b *testing.B) {
	r := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.FutureVoIP(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiscussionJurisdiction(b *testing.B) {
	r := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.DiscussionJurisdiction(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorldBuild measures cold-start cost of the full ecosystem.
func BenchmarkWorldBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := NewWorld(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAttachESIM measures the session-establishment fast path.
func BenchmarkAttachESIM(b *testing.B) {
	w, err := NewWorld(1)
	if err != nil {
		b.Fatal(err)
	}
	d := w.Deployment("DEU")
	r := w.Rand()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.AttachESIM(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTracerouteOp measures one end-to-end traceroute evaluation.
func BenchmarkTracerouteOp(b *testing.B) {
	w, err := NewWorld(1)
	if err != nil {
		b.Fatal(err)
	}
	s, err := w.Deployment("PAK").AttachESIM(w.Rand())
	if err != nil {
		b.Fatal(err)
	}
	r := w.Rand()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Traceroute(s, "Google", r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSignalingBreakdown(b *testing.B) {
	r := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.SignalingBreakdown(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConfounders(b *testing.B) {
	r := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.Confounders(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Parallel campaign engine ----

// campaignBenchConfig sizes a full five-campaign regeneration small
// enough to iterate but large enough that the worker pool matters.
func campaignBenchConfig(workers int) ExperimentConfig {
	cfg := DefaultExperimentConfig()
	cfg.TracesPerCountry = 8
	cfg.SpeedtestsPerCountry = 12
	cfg.CDNFetchesPerCountry = 4
	cfg.DNSPerCountry = 8
	cfg.VideosPerCountry = 3
	cfg.WebMeasurements = 3
	cfg.Workers = workers
	return cfg
}

func runCampaigns(r *ExperimentRunner) error {
	if _, err := r.Traces(); err != nil {
		return err
	}
	if _, err := r.Speedtests(); err != nil {
		return err
	}
	if _, err := r.CDNFetches(); err != nil {
		return err
	}
	if _, err := r.DNSLookups(); err != nil {
		return err
	}
	_, err := r.Videos()
	return err
}

var (
	campaignWorldOnce sync.Once
	campaignWorld     *World
	campaignWorldErr  error
)

func campaignBenchWorld(b *testing.B) *World {
	b.Helper()
	campaignWorldOnce.Do(func() {
		campaignWorld, campaignWorldErr = NewWorld(42)
	})
	if campaignWorldErr != nil {
		b.Fatal(campaignWorldErr)
	}
	return campaignWorld
}

func benchCampaign(b *testing.B, workers int) {
	w := campaignBenchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh runner per iteration: memoization would otherwise turn
		// every iteration after the first into a map read.
		r := NewExperimentRunnerWith(w, campaignBenchConfig(workers))
		if err := runCampaigns(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCampaignSerial(b *testing.B) { benchCampaign(b, 1) }

var campaignSpeedupOnce sync.Once

func BenchmarkCampaignParallel(b *testing.B) {
	w := campaignBenchWorld(b)
	// One-shot headline: time a serial pass against a full-width pass on
	// the same warm world so the comparison isolates the worker pool.
	campaignSpeedupOnce.Do(func() {
		workers := runtime.GOMAXPROCS(0)
		t0 := time.Now()
		if err := runCampaigns(NewExperimentRunnerWith(w, campaignBenchConfig(1))); err != nil {
			b.Fatal(err)
		}
		serial := time.Since(t0)
		t0 = time.Now()
		if err := runCampaigns(NewExperimentRunnerWith(w, campaignBenchConfig(workers))); err != nil {
			b.Fatal(err)
		}
		parallel := time.Since(t0)
		b.Logf("campaign speedup headline: serial %v / parallel %v = %.2fx (workers=%d, NumCPU=%d)",
			serial, parallel, float64(serial)/float64(parallel), workers, runtime.NumCPU())
	})
	benchCampaign(b, runtime.GOMAXPROCS(0))
}

// ---- Routing fast path ----

// benchRouteNetwork builds a frozen 40x40 grid (1600 nodes, ~3100
// links) with varied integer delays — big enough that a cache miss runs
// a real Dijkstra, regular enough to be cheap to construct.
func benchRouteNetwork() (*netsim.Network, int) {
	const k = 40
	net := netsim.New()
	for y := 0; y < k; y++ {
		for x := 0; x < k; x++ {
			net.AddNode(netsim.Node{Name: fmt.Sprintf("g%d-%d", x, y)})
		}
	}
	id := func(x, y int) netsim.NodeID { return netsim.NodeID(y*k + x) }
	for y := 0; y < k; y++ {
		for x := 0; x < k; x++ {
			d := float64(1 + (x*31+y*17)%7)
			if x+1 < k {
				net.Connect(id(x, y), id(x+1, y), netsim.Link{DelayMs: d})
			}
			if y+1 < k {
				net.Connect(id(x, y), id(x, y+1), netsim.Link{DelayMs: d + 0.5})
			}
		}
	}
	net.Freeze()
	return net, k * k
}

// BenchmarkRouteHit measures the cached fast path: a shard read-lock
// plus one map probe.
func BenchmarkRouteHit(b *testing.B) {
	net, v := benchRouteNetwork()
	if _, err := net.Route(0, netsim.NodeID(v-1)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Route(0, netsim.NodeID(v-1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteHitParallel is the contended version of the hit path:
// with the sharded cache this scales with cores instead of serializing
// on one mutex.
func BenchmarkRouteHitParallel(b *testing.B) {
	net, v := benchRouteNetwork()
	// Warm a spread of pairs across shards.
	pairs := make([][2]netsim.NodeID, 64)
	for i := range pairs {
		pairs[i] = [2]netsim.NodeID{netsim.NodeID(i), netsim.NodeID(v - 1 - i)}
		if _, err := net.Route(pairs[i][0], pairs[i][1]); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			p := pairs[i&63]
			i++
			if _, err := net.Route(p[0], p[1]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRouteMiss measures the uncached path: heap Dijkstra over the
// grid plus single-flight bookkeeping. The network is rebuilt per
// invocation and every iteration asks for a pair not yet cached.
func BenchmarkRouteMiss(b *testing.B) {
	net, v := benchRouteNetwork()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := netsim.NodeID((i / v) % v)
		dst := netsim.NodeID(i % v)
		if src == dst {
			dst = (dst + 1) % netsim.NodeID(v)
		}
		if _, err := net.Route(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}
