package roamsim_test

import (
	"fmt"

	"roamsim"
	"roamsim/internal/core"
	"roamsim/internal/mno"
)

// ExampleNewWorld shows the core loop: attach an eSIM in a visited
// country, classify its roaming architecture, and see where it breaks
// out. Everything is deterministic for a given seed.
func ExampleNewWorld() {
	w, err := roamsim.NewWorld(42)
	if err != nil {
		panic(err)
	}
	s, err := w.Deployment("PAK").AttachESIM(w.Rand())
	if err != nil {
		panic(err)
	}
	arch, err := w.ClassifyArchitecture(s)
	if err != nil {
		panic(err)
	}
	fmt.Println("issuer:", s.Profile.Issuer.Name)
	fmt.Println("architecture:", arch)
	fmt.Println("breakout:", s.Site.City, s.Site.Country)
	// Output:
	// issuer: Singtel
	// architecture: HR
	// breakout: Singapore SGP
}

// ExampleWorld_Demarcate runs a traceroute and splits it at the first
// public hop — the paper's demarcation methodology.
func ExampleWorld_Demarcate() {
	w, err := roamsim.NewWorld(42)
	if err != nil {
		panic(err)
	}
	s, err := w.Deployment("MDA").AttachESIM(w.Rand())
	if err != nil {
		panic(err)
	}
	tr, err := roamsim.Traceroute(s, "Google", w.Rand())
	if err != nil {
		panic(err)
	}
	pa, err := w.Demarcate(tr)
	if err != nil {
		panic(err)
	}
	fmt.Println("PGW operator:", pa.PGW.AS.Org)
	fmt.Println("PGW country:", pa.PGW.Country)
	// Output:
	// PGW operator: Wireless Logic
	// PGW country: GBR
}

// ExampleMineIMSIRanges demonstrates the IMSI pattern-mining step the
// paper used with the cooperating UK operator.
func ExampleMineIMSIRanges() {
	rs, err := roamsim.MineIMSIRanges([]mno.IMSI{
		"260067310000001", "260067310002222", "260067310005555",
	}, core.MineOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("ranges:", len(rs.Ranges))
	fmt.Println("matches leased IMSI:", rs.Match("260067310009999"))
	fmt.Println("matches retail IMSI:", rs.Match("260060000000001"))
	// Output:
	// ranges: 1
	// matches leased IMSI: true
	// matches retail IMSI: false
}
