package roamsim

import (
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	w, err := NewWorld(42)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(w.DeploymentKeys(false, false)); got != 24 {
		t.Fatalf("visited countries = %d, want 24", got)
	}

	// Attach the German eSIM and classify it: must be IHBO.
	d := w.Deployment("DEU")
	if d == nil {
		t.Fatal("DEU deployment missing")
	}
	s, err := d.AttachESIM(w.Rand())
	if err != nil {
		t.Fatal(err)
	}
	arch, err := w.ClassifyArchitecture(s)
	if err != nil {
		t.Fatal(err)
	}
	if arch != IHBO {
		t.Errorf("DEU eSIM arch = %s, want IHBO", arch)
	}

	// Run the full tool suite through the facade.
	if _, err := Speedtest(s, w.Rand()); err != nil {
		t.Errorf("Speedtest: %v", err)
	}
	tr, err := Traceroute(s, "Google", w.Rand())
	if err != nil {
		t.Fatal(err)
	}
	pa, err := w.Demarcate(tr)
	if err != nil {
		t.Fatal(err)
	}
	if pa.PGW.Country != "NLD" && pa.PGW.Country != "FRA" {
		t.Errorf("PGW country = %s", pa.PGW.Country)
	}
	if _, err := DNSLookup(s, w.Rand()); err != nil {
		t.Errorf("DNSLookup: %v", err)
	}
	if _, err := CDNFetch(s, "Cloudflare", w.Rand()); err != nil {
		t.Errorf("CDNFetch: %v", err)
	}
	if _, err := StreamVideo(s, VideoConfig{DurationSec: 30}, w.Rand()); err != nil {
		t.Errorf("StreamVideo: %v", err)
	}
}

func TestPublicAPIDeterminism(t *testing.T) {
	run := func() (string, float64) {
		w, err := NewWorld(7)
		if err != nil {
			t.Fatal(err)
		}
		s, err := w.Deployment("GEO").AttachESIM(w.Rand())
		if err != nil {
			t.Fatal(err)
		}
		res, err := Speedtest(s, w.Rand())
		if err != nil {
			t.Fatal(err)
		}
		return s.PGWAddr.String(), res.DownMbps
	}
	a1, d1 := run()
	a2, d2 := run()
	if a1 != a2 || d1 != d2 {
		t.Errorf("same seed must reproduce: (%s, %f) vs (%s, %f)", a1, d1, a2, d2)
	}
}

func TestMarketplaceFacade(t *testing.T) {
	m := Marketplace(1, 54)
	if got := len(m.Providers()); got != 54 {
		t.Errorf("providers = %d", got)
	}
}

func TestFacadeCoverage(t *testing.T) {
	w, err := NewWorld(5)
	if err != nil {
		t.Fatal(err)
	}
	if raw := w.Raw(); raw == nil || len(raw.Deployments) != 25 {
		t.Error("Raw() should expose the underlying world")
	}
	if got := len(w.DeploymentKeys(true, false)); got != 14 {
		t.Errorf("web keys = %d", got)
	}
	cfg := DefaultExperimentConfig()
	cfg.TracesPerCountry = 2
	r := NewExperimentRunnerWith(w, cfg)
	if r.W != w.Raw() {
		t.Error("runner should wrap the same world")
	}
	if _, err := r.Figure3(); err != nil {
		t.Errorf("runner over shared world: %v", err)
	}
}
