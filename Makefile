GO ?= go

.PHONY: verify vet build test race bench bench-fleet

## verify: the CI entry point — vet, build, race-enabled tests, then a
## one-iteration fleet throughput smoke (v1 vs v2 protocol paths).
verify: vet build race bench-fleet

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: regenerate every table/figure benchmark (incl. the campaign
## serial-vs-parallel speedup headline).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

## bench-fleet: smoke-run the fleet control-plane throughput benchmark
## (one iteration, 10k-ME cases skipped via -short).
bench-fleet:
	$(GO) test -short -run=^$$ -bench=Fleet -benchtime=1x ./internal/fleet
