GO ?= go

.PHONY: verify vet build test race bench

## verify: the CI entry point — vet, build, then race-enabled tests.
verify: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: regenerate every table/figure benchmark (incl. the campaign
## serial-vs-parallel speedup headline).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
