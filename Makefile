GO ?= go

.PHONY: verify vet build test race bench bench-fleet chaos-smoke metrics-smoke fuzz-short

## verify: the CI entry point — vet, build, race-enabled tests, a
## one-iteration fleet throughput smoke (v1 vs v2 protocol paths), the
## chaos differential suite under the race detector, and the
## observability endpoint smoke.
verify: vet build race bench-fleet chaos-smoke metrics-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: regenerate every table/figure benchmark (incl. the campaign
## serial-vs-parallel speedup headline).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

## bench-fleet: smoke-run the fleet control-plane throughput benchmark
## (one iteration, 10k-ME cases skipped via -short).
bench-fleet:
	$(GO) test -short -run=^$$ -bench=Fleet -benchtime=1x ./internal/fleet

## chaos-smoke: the fault-injection differential suite under the race
## detector — a chaos fleet run must ingest the byte-identical dataset a
## clean run does, and the fault schedule must replay from its seed.
chaos-smoke:
	$(GO) test -race -run 'TestFleetChaos|TestChaos' ./internal/fleet
	$(GO) test -race ./internal/chaos

## metrics-smoke: boot a real amigo-server, scrape /admin/metrics, and
## assert a non-empty, parseable Prometheus exposition that reflects
## live server state.
metrics-smoke:
	sh scripts/metrics_smoke.sh

## fuzz-short: a 10s budget per native fuzz target, on top of the
## checked-in seed corpora (which always run as part of plain `go test`).
fuzz-short:
	$(GO) test -fuzz=FuzzDemarcate -fuzztime=10s -run=^$$ ./internal/core
	$(GO) test -fuzz=FuzzLeaseDecode -fuzztime=10s -run=^$$ ./internal/amigo
