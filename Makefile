GO ?= go

.PHONY: verify vet lint lint-json lint-allows lint-guard build test race bench bench-fleet bench-json chaos-smoke metrics-smoke shard-smoke reshard-smoke vclock-smoke fuzz-short FORCE

## verify: the CI entry point — vet, the roamvet determinism/hygiene
## analyzers, build, race-enabled tests, a one-iteration fleet
## throughput smoke (v1/v2/v3 protocol paths), the chaos differential
## suite under the race detector, the observability endpoint smoke, the
## sharded control-plane / WAL durability smoke, the live-reshard +
## WAL-compaction smoke, and the virtual-time engine smoke.
verify: vet lint lint-guard build race bench-fleet chaos-smoke metrics-smoke shard-smoke reshard-smoke vclock-smoke

vet:
	$(GO) vet ./...

## lint: run the nine roamvet analyzers (ROAM001-009) over the whole
## module; nonzero exit on any finding. The binary is rebuilt
## unconditionally — the Go build cache makes that cheap, and a
## prerequisite list built from $(wildcard) goes quietly stale when a
## source file is deleted (the list shrinks, the timestamp comparison
## passes, and an outdated roamvet green-lights the tree).
bin/roamvet: FORCE
	$(GO) build -o bin/roamvet ./cmd/roamvet

FORCE:

lint: bin/roamvet
	./bin/roamvet

## lint-json: findings plus the //lint:allow waiver inventory as JSON
## (for editor/CI integration).
lint-json: bin/roamvet
	./bin/roamvet -json

## lint-allows: the active //lint:allow directives — every place the
## tree opts out of a contract, and why.
lint-allows: bin/roamvet
	./bin/roamvet -allows

## lint-guard: assert a full-module roamvet run finishes inside its
## wall-clock budget (30s) — the flow-aware analyzers must stay cheap
## enough to run on every push.
lint-guard: bin/roamvet
	bash scripts/lint_guard.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: regenerate every table/figure benchmark (incl. the campaign
## serial-vs-parallel speedup headline).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

## bench-fleet: smoke-run the fleet control-plane throughput benchmark
## over all three protocols (one iteration, 10k-ME cases skipped via
## -short).
bench-fleet:
	$(GO) test -short -run=^$$ -bench=Fleet -benchtime=1x ./internal/fleet

## bench-json: run the fleet throughput benchmark at 100/1000 MEs for
## v1/v2/v3 and snapshot results/s into BENCH_fleet.json (uploaded as a
## CI artifact so regressions are visible per-commit).
bench-json:
	bash scripts/bench_fleet.sh BENCH_fleet.json

## chaos-smoke: the fault-injection differential suite under the race
## detector — a chaos fleet run must ingest the byte-identical dataset a
## clean run does, and the fault schedule must replay from its seed.
chaos-smoke:
	$(GO) test -race -run 'TestFleetChaos|TestChaos' ./internal/fleet
	$(GO) test -race ./internal/chaos

## metrics-smoke: boot a real amigo-server, scrape /admin/metrics, and
## assert a non-empty, parseable Prometheus exposition that reflects
## live server state.
metrics-smoke:
	bash scripts/metrics_smoke.sh

## shard-smoke: the sharded control plane end to end — the differential
## and crash-recovery suites under the race detector, then the real
## binaries: roam-fleet killing a shard mid-campaign with -crosscheck,
## and a roam-gateway process killed and cold-restarted over its WALs.
shard-smoke:
	$(GO) test -race -run 'TestSharded|TestShardCrash|TestShardKill' ./internal/fleet
	$(GO) test -race ./internal/walsink ./internal/shard
	bash scripts/shard_smoke.sh

## reshard-smoke: WAL lifecycle end to end — compaction + torn-compaction
## recovery and the reshard differential suites under the race detector,
## then the real binaries: roam-fleet live-resharding 1→4 mid-campaign
## with compaction and -crosscheck, and roam-gateway cold-restarting
## over the resharded, partly compacted WAL set via the manifest.
reshard-smoke:
	$(GO) test -race -run 'TestReshard|TestCompaction|TestMovedMEs|TestRingBalance|TestGatewayPauseResume|TestMergedResults' ./internal/fleet ./internal/shard ./internal/walsink
	bash scripts/reshard_smoke.sh

## vclock-smoke: the virtual-time engine — the vclock unit suite under
## the race detector (scheduler, timers, contexts, deadlock/stall
## guards), then one fleet crosscheck: the clock differential test
## proving a virtual-time campaign ingests the byte-identical dataset a
## wall-clock run does, across protocols, chaos, and realized pacing.
vclock-smoke:
	$(GO) test -race ./internal/vclock
	$(GO) test -race -run 'TestVirtualTimeEquivalence' ./internal/fleet

## fuzz-short: a 10s budget per native fuzz target, on top of the
## checked-in seed corpora (which always run as part of plain `go test`).
fuzz-short:
	$(GO) test -fuzz=FuzzDemarcate -fuzztime=10s -run=^$$ ./internal/core
	$(GO) test -fuzz=FuzzLeaseDecode -fuzztime=10s -run=^$$ ./internal/amigo
	$(GO) test -fuzz=FuzzFrameRoundTrip -fuzztime=10s -run=^$$ ./internal/wire
	$(GO) test -fuzz=FuzzFrameDecode -fuzztime=10s -run=^$$ ./internal/wire
	$(GO) test -fuzz=FuzzWALReplay -fuzztime=10s -run=^$$ ./internal/walsink
	$(GO) test -fuzz=FuzzCompactRecovery -fuzztime=10s -run=^$$ ./internal/walsink
